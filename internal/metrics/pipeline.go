package metrics

import (
	"fmt"
	"sync"
	"sync/atomic"

	"lexequal/internal/core"
)

// PipelineCounters accumulates per-stage execution counters across
// queries: rows probed, candidates admitted to DP verification, rows
// pruned by the length and count filters, DP cells evaluated, matches
// reported, and q-gram signature-cache hits. All fields are atomics so
// morsel workers and concurrent sessions can record without a lock;
// Reset and Snapshot additionally serialize against each other (see
// below) so a snapshot never observes a half-applied reset.
type PipelineCounters struct {
	Queries      atomic.Int64
	Rows         atomic.Int64
	Candidates   atomic.Int64
	PrunedLength atomic.Int64
	PrunedCount  atomic.Int64
	PrunedSig    atomic.Int64
	DPCells      atomic.Int64
	Matches      atomic.Int64
	SigCacheHits atomic.Int64

	// Kernel/batch counters of the bit-parallel verification pipeline:
	// word operations executed by the bit-parallel kernel, verifications
	// a requested kernel deferred to the scalar DP, and columnar
	// candidate batches materialized.
	BitvecOps       atomic.Int64
	ScalarFallbacks atomic.Int64
	BatchesBuilt    atomic.Int64

	// mu serializes Reset against Snapshot. Reset stores zero
	// field-by-field; without the mutex a concurrent Snapshot could read
	// pre-reset values for some fields and post-reset zeros for others —
	// a torn view where e.g. Matches > Queries. Record stays lock-free.
	mu sync.Mutex

	// mirror, when set, receives a copy of every Record — the server
	// uses it to fold per-session counters into a global set without
	// the sessions knowing about each other.
	mirror atomic.Pointer[PipelineCounters]
}

// Record folds one strategy execution's Stats into the counters.
// Queries is incremented first and Matches/SigCacheHits last; paired
// with Snapshot's reverse read order this keeps the invariant
// Matches ≤ Queries·(matches-per-record) visible to concurrent readers.
func (pc *PipelineCounters) Record(st core.Stats) {
	pc.Queries.Add(1)
	pc.Rows.Add(int64(st.Rows))
	pc.Candidates.Add(int64(st.Candidates))
	pc.PrunedLength.Add(int64(st.PrunedLength))
	pc.PrunedCount.Add(int64(st.PrunedCount))
	pc.PrunedSig.Add(int64(st.PrunedSig))
	pc.BitvecOps.Add(st.BitvecOps)
	pc.ScalarFallbacks.Add(int64(st.ScalarFallbacks))
	pc.BatchesBuilt.Add(int64(st.BatchesBuilt))
	pc.DPCells.Add(st.DPCells)
	pc.Matches.Add(int64(st.Matches))
	pc.SigCacheHits.Add(int64(st.SigCacheHits))
	if m := pc.mirror.Load(); m != nil {
		m.Record(st)
	}
}

// SetMirror directs a copy of every subsequent Record into m as well
// (nil detaches). The mirror must not form a cycle.
func (pc *PipelineCounters) SetMirror(m *PipelineCounters) {
	pc.mirror.Store(m)
}

// Reset zeroes every counter. It holds the snapshot mutex for the whole
// store sequence so no Snapshot can interleave and observe a torn
// (half-zeroed) view.
func (pc *PipelineCounters) Reset() {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	pc.Queries.Store(0)
	pc.Rows.Store(0)
	pc.Candidates.Store(0)
	pc.PrunedLength.Store(0)
	pc.PrunedCount.Store(0)
	pc.PrunedSig.Store(0)
	pc.BitvecOps.Store(0)
	pc.ScalarFallbacks.Store(0)
	pc.BatchesBuilt.Store(0)
	pc.DPCells.Store(0)
	pc.Matches.Store(0)
	pc.SigCacheHits.Store(0)
}

// PipelineSnapshot is a point-in-time copy of the counters, safe to
// compare and render.
type PipelineSnapshot struct {
	Queries      int64
	Rows         int64
	Candidates   int64
	PrunedLength int64
	PrunedCount  int64
	PrunedSig    int64
	DPCells      int64
	Matches      int64
	SigCacheHits int64

	BitvecOps       int64
	ScalarFallbacks int64
	BatchesBuilt    int64
}

// Snapshot copies the current counter values. It serializes against
// Reset, and reads the fields in the reverse of Record's write order:
// if the snapshot observes a Record's Matches increment, it is
// guaranteed to also observe that Record's Queries increment, so
// derived invariants (Matches ≤ Queries when every record reports at
// most one match) hold even against in-flight Records.
func (pc *PipelineCounters) Snapshot() PipelineSnapshot {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	var s PipelineSnapshot
	s.SigCacheHits = pc.SigCacheHits.Load()
	s.Matches = pc.Matches.Load()
	s.DPCells = pc.DPCells.Load()
	s.BatchesBuilt = pc.BatchesBuilt.Load()
	s.ScalarFallbacks = pc.ScalarFallbacks.Load()
	s.BitvecOps = pc.BitvecOps.Load()
	s.PrunedSig = pc.PrunedSig.Load()
	s.PrunedCount = pc.PrunedCount.Load()
	s.PrunedLength = pc.PrunedLength.Load()
	s.Candidates = pc.Candidates.Load()
	s.Rows = pc.Rows.Load()
	s.Queries = pc.Queries.Load()
	return s
}

// PruneRate is the fraction of probed rows eliminated before DP
// verification (0 when nothing was probed).
func (s PipelineSnapshot) PruneRate() float64 {
	if s.Rows == 0 {
		return 0
	}
	return float64(s.PrunedLength+s.PrunedCount+s.PrunedSig) / float64(s.Rows)
}

// String renders the snapshot as the one-line summary used by SHOW
// LEXSTATS and the bench tool.
func (s PipelineSnapshot) String() string {
	return fmt.Sprintf(
		"queries=%d rows=%d pruned_length=%d pruned_count=%d pruned_sig=%d candidates=%d dp_cells=%d bitvec_ops=%d scalar_fallbacks=%d batches_built=%d matches=%d sig_cache_hits=%d",
		s.Queries, s.Rows, s.PrunedLength, s.PrunedCount, s.PrunedSig, s.Candidates, s.DPCells,
		s.BitvecOps, s.ScalarFallbacks, s.BatchesBuilt, s.Matches, s.SigCacheHits)
}
