package metrics

import (
	"math"
	"testing"

	"lexequal/internal/core"
	"lexequal/internal/dataset"
	"lexequal/internal/phoneme"
	"lexequal/internal/script"
	"lexequal/internal/ttp"
)

// smallLexicon builds a hand-sized tagged lexicon for fast tests.
func smallLexicon(t *testing.T) *dataset.Lexicon {
	t.Helper()
	mk := func(v string, lang script.Language, tag int) dataset.Entry {
		return dataset.Entry{Text: core.Text{Value: v, Lang: lang}, Tag: tag}
	}
	lex := &dataset.Lexicon{
		Entries: []dataset.Entry{
			mk("Nehru", script.English, 0),
			mk("नेहरु", script.Hindi, 0),
			mk("நேரு", script.Tamil, 0),
			mk("Gandhi", script.English, 1),
			mk("गांधी", script.Hindi, 1),
			mk("காந்தி", script.Tamil, 1),
			mk("Kamala", script.English, 2),
			mk("कमला", script.Hindi, 2),
			mk("கமலா", script.Tamil, 2),
		},
		Groups:     3,
		GroupSizes: []int{3, 3, 3},
	}
	return lex
}

func TestEvaluatorBasics(t *testing.T) {
	lex := smallLexicon(t)
	ev, err := NewEvaluator(lex, nil)
	if err != nil {
		t.Fatal(err)
	}
	if ev.Entries() != 9 {
		t.Errorf("Entries = %d", ev.Entries())
	}
	if ev.Ideal() != 9 { // 3 groups x C(3,2)
		t.Errorf("Ideal = %d", ev.Ideal())
	}
}

func TestEvaluatorRejectsUnconvertible(t *testing.T) {
	lex := &dataset.Lexicon{
		Entries: []dataset.Entry{
			{Text: core.Text{Value: "بهنسي", Lang: script.Arabic}, Tag: 0},
		},
		Groups:     1,
		GroupSizes: []int{1},
	}
	if _, err := NewEvaluator(lex, ttp.Default()); err == nil {
		t.Error("evaluator accepted a language without a converter")
	}
}

func TestSweepMonotonicity(t *testing.T) {
	lex := smallLexicon(t)
	ev, err := NewEvaluator(lex, nil)
	if err != nil {
		t.Fatal(err)
	}
	thresholds := []float64{0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.8, 1}
	pts, err := ev.SweepClustered(phoneme.DefaultClusters(), 0.25, core.DefaultWeakIndel, thresholds)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != len(thresholds) {
		t.Fatalf("points = %d", len(pts))
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].Recall < pts[i-1].Recall {
			t.Errorf("recall not monotone at %v: %v < %v", pts[i].Threshold, pts[i].Recall, pts[i-1].Recall)
		}
		if pts[i].Reported < pts[i-1].Reported {
			t.Errorf("reported matches not monotone at %v", pts[i].Threshold)
		}
	}
	last := pts[len(pts)-1]
	if last.Recall != 1 {
		t.Errorf("recall at threshold 1 = %v (all pairs should match)", last.Recall)
	}
	for _, p := range pts {
		if p.Recall < 0 || p.Recall > 1 || p.Precision < 0 || p.Precision > 1 {
			t.Errorf("point out of range: %+v", p)
		}
		if p.Correct > p.Reported {
			t.Errorf("m1 > m2: %+v", p)
		}
	}
}

func TestSweepAgreesWithDirectCount(t *testing.T) {
	// Cross-check the sorted-ratio sweep against a brute-force count at
	// one threshold.
	lex := smallLexicon(t)
	ev, err := NewEvaluator(lex, nil)
	if err != nil {
		t.Fatal(err)
	}
	const thr = 0.3
	pts, err := ev.SweepClustered(phoneme.DefaultClusters(), 0.25, core.DefaultWeakIndel, []float64{thr})
	if err != nil {
		t.Fatal(err)
	}
	op := core.MustNew(core.Options{})
	m1, m2 := 0, 0
	for i := 0; i < len(lex.Entries); i++ {
		for j := i + 1; j < len(lex.Entries); j++ {
			pi, _ := op.Transform(lex.Entries[i].Text.Value, lex.Entries[i].Text.Lang)
			pj, _ := op.Transform(lex.Entries[j].Text.Value, lex.Entries[j].Text.Lang)
			if op.MatchPhonemes(pi, pj, thr) {
				m2++
				if lex.Entries[i].Tag == lex.Entries[j].Tag {
					m1++
				}
			}
		}
	}
	if pts[0].Correct != m1 || pts[0].Reported != m2 {
		t.Errorf("sweep (m1=%d m2=%d) != direct (m1=%d m2=%d)", pts[0].Correct, pts[0].Reported, m1, m2)
	}
}

func TestGridAndBest(t *testing.T) {
	lex := smallLexicon(t)
	ev, err := NewEvaluator(lex, nil)
	if err != nil {
		t.Fatal(err)
	}
	grid, err := ev.Grid(phoneme.DefaultClusters(), core.DefaultWeakIndel,
		[]float64{0, 0.25, 1}, []float64{0.1, 0.3, 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if len(grid) != 3 || len(grid[0]) != 3 {
		t.Fatalf("grid shape %dx%d", len(grid), len(grid[0]))
	}
	best := Best(grid)
	if math.IsNaN(best.Threshold) {
		t.Fatal("Best found nothing")
	}
	for _, row := range grid {
		for _, p := range row {
			if p.CornerDistance() < best.CornerDistance() {
				t.Errorf("Best missed a better point: %+v", p)
			}
		}
	}
}

func TestCornerDistance(t *testing.T) {
	perfect := QualityPoint{Recall: 1, Precision: 1}
	if perfect.CornerDistance() != 0 {
		t.Error("perfect point has nonzero corner distance")
	}
	worst := QualityPoint{Recall: 0, Precision: 0}
	if math.Abs(worst.CornerDistance()-math.Sqrt2) > 1e-9 {
		t.Errorf("worst corner distance = %v", worst.CornerDistance())
	}
}

func TestSuggestParameters(t *testing.T) {
	lex := smallLexicon(t)
	best, err := SuggestParameters(lex, nil, phoneme.DefaultClusters())
	if err != nil {
		t.Fatal(err)
	}
	// On the easy small lexicon the suggested point should be strong.
	if best.Recall < 0.8 || best.Precision < 0.8 {
		t.Errorf("suggested point weak: %+v", best)
	}
	if best.Threshold < 0 || best.Threshold > 1 || best.ICSC < 0 || best.ICSC > 1 {
		t.Errorf("suggested parameters out of range: %+v", best)
	}
}

func TestPaperQualityClaims(t *testing.T) {
	// The headline reproduction, on the full lexicon (Figures 11/12):
	//  - low ICSC gives near-perfect recall even at tiny thresholds but
	//    precision collapses as the threshold grows (the Soundex trap);
	//  - ICSC 0.25 has an operating point with recall >= 0.90 and
	//    precision >= 0.70;
	//  - ICSC 1 (Levenshtein) has poor recall at moderate thresholds.
	if testing.Short() {
		t.Skip("full-lexicon sweep in -short mode")
	}
	lex, err := dataset.BuildLexicon(ttp.Default(), dataset.SourceAll)
	if err != nil {
		t.Fatal(err)
	}
	ev, err := NewEvaluator(lex, nil)
	if err != nil {
		t.Fatal(err)
	}
	thresholds := []float64{0.05, 0.1, 0.15, 0.2, 0.25, 0.3, 0.5}
	grid, err := ev.Grid(phoneme.DefaultClusters(), core.DefaultWeakIndel,
		[]float64{0, 0.25, 1}, thresholds)
	if err != nil {
		t.Fatal(err)
	}
	soundexRow, midRow, levRow := grid[0], grid[1], grid[2]

	if soundexRow[0].Recall < 0.95 {
		t.Errorf("ICSC=0 recall at 0.05 = %.3f, want >= 0.95", soundexRow[0].Recall)
	}
	// Soundex precision collapse: by threshold 0.3 precision is far
	// below its small-threshold value.
	if soundexRow[5].Precision > 0.5*soundexRow[0].Precision {
		t.Errorf("ICSC=0 precision did not collapse: %.3f -> %.3f",
			soundexRow[0].Precision, soundexRow[5].Precision)
	}
	// The paper's operating band for ICSC 0.25.
	found := false
	for _, p := range midRow {
		if p.Recall >= 0.90 && p.Precision >= 0.70 {
			found = true
		}
	}
	if !found {
		t.Errorf("no good operating point at ICSC 0.25: %+v", midRow)
	}
	// Levenshtein recall is poor at the moderate thresholds where the
	// clustered distance already works.
	if levRow[3].Recall > midRow[3].Recall/2 {
		t.Errorf("Levenshtein recall %.3f not clearly below clustered %.3f at 0.2",
			levRow[3].Recall, midRow[3].Recall)
	}
	// Best parameters land in the low-ICSC, low-to-moderate-threshold
	// region and are strong on both axes. (On this lexicon the corner
	// winner is ICSC=0 at a tiny threshold — cluster-signature
	// equality; the paper's own best band was ICSC 0.25–0.5 at
	// 0.25–0.35. Both are small-ICSC knees; see EXPERIMENTS.md.)
	best := Best(grid)
	if best.ICSC > 0.5 {
		t.Errorf("best ICSC = %v, want <= 0.5", best.ICSC)
	}
	if best.Threshold > 0.35 {
		t.Errorf("best threshold = %v, want <= 0.35", best.Threshold)
	}
	if best.Recall < 0.9 || best.Precision < 0.7 {
		t.Errorf("best point weak: %+v", best)
	}
}
