package metrics

import (
	"fmt"
	"strings"
	"sync"
	"testing"

	"lexequal/internal/core"
)

func TestPipelineCountersRecord(t *testing.T) {
	var pc PipelineCounters
	pc.Record(core.Stats{Rows: 10, Candidates: 4, Matches: 2,
		PrunedLength: 5, PrunedCount: 1, DPCells: 123, SigCacheHits: 3})
	pc.Record(core.Stats{Rows: 7, Candidates: 7, Matches: 1, DPCells: 77})
	s := pc.Snapshot()
	want := PipelineSnapshot{Queries: 2, Rows: 17, Candidates: 11,
		PrunedLength: 5, PrunedCount: 1, DPCells: 200, Matches: 3, SigCacheHits: 3}
	if s != want {
		t.Errorf("Snapshot = %+v, want %+v", s, want)
	}
	if got := s.PruneRate(); got != 6.0/17.0 {
		t.Errorf("PruneRate = %v", got)
	}
	for _, frag := range []string{"queries=2", "rows=17", "dp_cells=200", "sig_cache_hits=3"} {
		if !strings.Contains(s.String(), frag) {
			t.Errorf("String() missing %q: %s", frag, s)
		}
	}
	pc.Reset()
	if z := pc.Snapshot(); z != (PipelineSnapshot{}) {
		t.Errorf("Reset left %+v", z)
	}
	if (PipelineSnapshot{}).PruneRate() != 0 {
		t.Error("empty snapshot PruneRate != 0")
	}
}

// TestPipelineCountersConcurrent hammers Record from many goroutines;
// meaningful under -race and checks the totals are exact.
// TestPipelineCountersTornReset hammers Record, Reset and Snapshot
// concurrently and asserts no snapshot ever shows a torn view. Every
// Record reports exactly one match per query, so any consistent
// snapshot — taken between whole resets, not in the middle of one —
// satisfies Matches <= Queries. Before the Reset/Snapshot mutex, a
// snapshot racing a reset could read Matches pre-reset and Queries
// post-reset and observe Matches > Queries. Run under -race.
func TestPipelineCountersTornReset(t *testing.T) {
	var pc PipelineCounters
	const recorders, rounds, resets, snapshots = 4, 300, 300, 600
	var wg sync.WaitGroup
	for g := 0; g < recorders; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				pc.Record(core.Stats{Rows: 3, Candidates: 2, Matches: 1, DPCells: 5})
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < resets; i++ {
			pc.Reset()
		}
	}()
	var snapErr error
	for i := 0; i < snapshots && snapErr == nil; i++ {
		s := pc.Snapshot()
		if s.Matches > s.Queries {
			snapErr = fmt.Errorf("torn snapshot: matches %d > queries %d", s.Matches, s.Queries)
		}
		if s.Rows > 3*s.Queries {
			snapErr = fmt.Errorf("torn snapshot: rows %d > 3*queries %d", s.Rows, 3*s.Queries)
		}
	}
	wg.Wait()
	if snapErr != nil {
		t.Fatal(snapErr)
	}
}

// TestPipelineCountersMirror verifies the server-global mirror: records
// land in both the session counters and the mirror, and detaching stops
// the flow.
func TestPipelineCountersMirror(t *testing.T) {
	var sess, global PipelineCounters
	sess.SetMirror(&global)
	sess.Record(core.Stats{Rows: 2, Matches: 1})
	sess.Record(core.Stats{Rows: 4})
	if g := global.Snapshot(); g.Queries != 2 || g.Rows != 6 || g.Matches != 1 {
		t.Errorf("mirror snapshot = %+v", g)
	}
	sess.SetMirror(nil)
	sess.Record(core.Stats{Rows: 1})
	if g := global.Snapshot(); g.Queries != 2 {
		t.Errorf("detached mirror still recorded: %+v", g)
	}
	if s := sess.Snapshot(); s.Queries != 3 || s.Rows != 7 {
		t.Errorf("session snapshot = %+v", s)
	}
}

func TestPipelineCountersConcurrent(t *testing.T) {
	var pc PipelineCounters
	const goroutines, rounds = 8, 200
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				pc.Record(core.Stats{Rows: 1, Candidates: 1, DPCells: 2})
			}
		}()
	}
	wg.Wait()
	s := pc.Snapshot()
	if s.Queries != goroutines*rounds || s.Rows != goroutines*rounds || s.DPCells != 2*goroutines*rounds {
		t.Errorf("lost updates: %+v", s)
	}
}
