package metrics

import (
	"strings"
	"sync"
	"testing"

	"lexequal/internal/core"
)

func TestPipelineCountersRecord(t *testing.T) {
	var pc PipelineCounters
	pc.Record(core.Stats{Rows: 10, Candidates: 4, Matches: 2,
		PrunedLength: 5, PrunedCount: 1, DPCells: 123, SigCacheHits: 3})
	pc.Record(core.Stats{Rows: 7, Candidates: 7, Matches: 1, DPCells: 77})
	s := pc.Snapshot()
	want := PipelineSnapshot{Queries: 2, Rows: 17, Candidates: 11,
		PrunedLength: 5, PrunedCount: 1, DPCells: 200, Matches: 3, SigCacheHits: 3}
	if s != want {
		t.Errorf("Snapshot = %+v, want %+v", s, want)
	}
	if got := s.PruneRate(); got != 6.0/17.0 {
		t.Errorf("PruneRate = %v", got)
	}
	for _, frag := range []string{"queries=2", "rows=17", "dp_cells=200", "sig_cache_hits=3"} {
		if !strings.Contains(s.String(), frag) {
			t.Errorf("String() missing %q: %s", frag, s)
		}
	}
	pc.Reset()
	if z := pc.Snapshot(); z != (PipelineSnapshot{}) {
		t.Errorf("Reset left %+v", z)
	}
	if (PipelineSnapshot{}).PruneRate() != 0 {
		t.Error("empty snapshot PruneRate != 0")
	}
}

// TestPipelineCountersConcurrent hammers Record from many goroutines;
// meaningful under -race and checks the totals are exact.
func TestPipelineCountersConcurrent(t *testing.T) {
	var pc PipelineCounters
	const goroutines, rounds = 8, 200
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				pc.Record(core.Stats{Rows: 1, Candidates: 1, DPCells: 2})
			}
		}()
	}
	wg.Wait()
	s := pc.Snapshot()
	if s.Queries != goroutines*rounds || s.Rows != goroutines*rounds || s.DPCells != 2*goroutines*rounds {
		t.Errorf("lost updates: %+v", s)
	}
}
