package server

import (
	"bufio"
	"fmt"
	"io"
	"net"
	"strings"

	"lexequal/internal/frame"
)

// The wire protocol is deliberately minimal: every message, in both
// directions, is one frame (see internal/frame) —
//
//	uint32 big-endian payload length | payload bytes
//
// A request payload is one SQL statement (or the STATUS admin command)
// in UTF-8. A response payload starts with a one-byte status marker:
// '+' (success; the rest is the rendered result table) or '-' (failure;
// the rest is the error message). One request yields exactly one
// response, in order, so a client may pipeline. A connection may also
// open a replication stream (internal/repl) with a REPL handshake
// frame, after which the framing stays but the payload grammar is the
// replication protocol's.

// MaxFrame bounds a single frame; larger requests or responses are
// rejected rather than buffered (a 1 MiB statement is not a query, it
// is a mistake).
const MaxFrame = frame.MaxFrame

const (
	statusOK  = '+'
	statusErr = '-'
)

// writeFrame sends one length-prefixed frame.
func writeFrame(w io.Writer, payload []byte) error {
	return frame.Write(w, payload)
}

// readFrame reads one length-prefixed frame.
func readFrame(r *bufio.Reader) ([]byte, error) {
	return frame.Read(r)
}

func okPayload(text string) []byte {
	return append([]byte{statusOK}, text...)
}

func errPayload(err error) []byte {
	return append([]byte{statusErr}, err.Error()...)
}

// RemoteError is a server-reported statement failure, as distinct from
// a transport failure.
type RemoteError struct{ Msg string }

func (e *RemoteError) Error() string { return e.Msg }

// Client is a minimal synchronous client for the frame protocol, used
// by the smoke client and the tests.
type Client struct {
	conn net.Conn
	r    *bufio.Reader
}

// Dial connects to a lexequald server.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return &Client{conn: conn, r: bufio.NewReader(conn)}, nil
}

// Query sends one statement and waits for its response. A *RemoteError
// is a statement failure (the connection remains usable); any other
// error is a transport failure.
func (c *Client) Query(stmt string) (string, error) {
	if err := writeFrame(c.conn, []byte(stmt)); err != nil {
		return "", err
	}
	payload, err := readFrame(c.r)
	if err != nil {
		return "", err
	}
	if len(payload) == 0 {
		return "", fmt.Errorf("server: empty response frame")
	}
	body := string(payload[1:])
	switch payload[0] {
	case statusOK:
		return body, nil
	case statusErr:
		return "", &RemoteError{Msg: body}
	default:
		return "", fmt.Errorf("server: bad response marker %q", payload[0])
	}
}

// Close terminates the connection.
func (c *Client) Close() error { return c.conn.Close() }

// IsAdminStatus reports whether a request payload is the STATUS admin
// command (matched before SQL parsing, case-insensitively).
func IsAdminStatus(stmt string) bool {
	return strings.EqualFold(strings.TrimSpace(stmt), "STATUS")
}
