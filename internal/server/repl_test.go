package server

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"lexequal/internal/db"
	"lexequal/internal/repl"
)

// startPrimaryServer opens a fresh primary (WAL starting at LSN 1, so
// a fresh follower can bootstrap over the wire) and serves it.
func startPrimaryServer(t *testing.T, dir string, opts db.Options, cfg Config) (*Server, *db.DB) {
	t.Helper()
	d, err := db.OpenOpts(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := New(d, nil, cfg)
	if err != nil {
		d.Close()
		t.Fatal(err)
	}
	if err := srv.Start(); err != nil {
		d.Close()
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Shutdown() })
	return srv, d
}

// startReplica opens dir as a replica, starts a follower streaming
// from primaryAddr, and serves the replica read-only.
func startReplica(t *testing.T, dir, primaryAddr string) (*Server, *db.DB, *repl.Follower) {
	t.Helper()
	d, err := db.OpenOpts(dir, db.Options{Replica: true})
	if err != nil {
		t.Fatal(err)
	}
	f, err := repl.StartFollower(d, primaryAddr)
	if err != nil {
		d.Close()
		t.Fatal(err)
	}
	srv, err := New(d, nil, Config{})
	if err != nil {
		f.Stop()
		d.Close()
		t.Fatal(err)
	}
	srv.SetFollower(f)
	if err := srv.Start(); err != nil {
		f.Stop()
		d.Close()
		t.Fatal(err)
	}
	t.Cleanup(func() { f.Stop(); srv.Shutdown() })
	return srv, d, f
}

// waitApplied polls until the replica's applied LSN reaches at least
// target.
func waitApplied(t *testing.T, d *db.DB, target uint64) {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		if d.AppliedLSN() >= target {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("replica stuck at applied lsn %d, want >= %d", d.AppliedLSN(), target)
}

const soakQuery = `SELECT id, name FROM people ORDER BY id`

// TestReplServerEndToEnd drives the whole wire path: a primary server
// seeded over its own SQL protocol, a follower bootstrapping from
// nothing, an 8-client read soak against the replica while a writer
// keeps committing on the primary, STATUS on both roles, read-only
// enforcement, and a follower kill/restart that resumes without a
// resync.
func TestReplServerEndToEnd(t *testing.T) {
	primSrv, primDB := startPrimaryServer(t, t.TempDir(), db.Options{}, Config{})
	w := dial(t, primSrv)
	if _, err := w.Query(`CREATE TABLE people (id INT, name TEXT)`); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if _, err := w.Query(fmt.Sprintf(`INSERT INTO people VALUES (%d, 'seed-%d')`, i, i)); err != nil {
			t.Fatal(err)
		}
	}

	replSrv, replDB, f := startReplica(t, t.TempDir(), primSrv.Addr().String())
	waitApplied(t, replDB, primDB.WAL().DurableLSN())

	// Concurrent writer on the primary while 8 clients soak the replica
	// with reads. The replica serves snapshots, so every read must
	// succeed and parse; convergence is checked after the writer stops.
	const writerRows = 40
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < writerRows; i++ {
			if _, err := w.Query(fmt.Sprintf(`INSERT INTO people VALUES (%d, 'soak-%d')`, 100+i, i)); err != nil {
				t.Errorf("writer: %v", err)
				return
			}
		}
	}()
	for c := 0; c < 8; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rc := dial(t, replSrv)
			for i := 0; i < 25; i++ {
				out, err := rc.Query(soakQuery)
				if err != nil {
					t.Errorf("reader %d: %v", c, err)
					return
				}
				if !strings.Contains(out, "seed-0") {
					t.Errorf("reader %d: seed row missing:\n%s", c, out)
					return
				}
			}
		}(c)
	}
	wg.Wait()

	// Writer done: wait for full catch-up, then the replica must answer
	// byte-identically to the primary.
	waitApplied(t, replDB, primDB.WAL().DurableLSN())
	pw, err := w.Query(soakQuery)
	if err != nil {
		t.Fatal(err)
	}
	rc := dial(t, replSrv)
	rw, err := rc.Query(soakQuery)
	if err != nil {
		t.Fatal(err)
	}
	if pw != rw {
		t.Fatalf("replica answer diverges from primary:\nprimary:\n%s\nreplica:\n%s", pw, rw)
	}
	if !strings.Contains(pw, fmt.Sprintf("soak-%d", writerRows-1)) {
		t.Fatalf("last soak row missing from converged state:\n%s", pw)
	}

	// Writes are refused at the replica with a clear error.
	if _, err := rc.Query(`INSERT INTO people VALUES (999, 'no')`); err == nil {
		t.Fatal("replica accepted INSERT")
	} else if !strings.Contains(err.Error(), "read-only replica") {
		t.Fatalf("replica write refusal unclear: %v", err)
	}

	// STATUS on both roles. The replica has caught up, so its lag line
	// must return to 0.
	pst, err := w.Query("status")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"repl: role=primary followers=1", "repl_follower: id="} {
		if !strings.Contains(pst, want) {
			t.Errorf("primary STATUS missing %q:\n%s", want, pst)
		}
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		rst, err := rc.Query("status")
		if err != nil {
			t.Fatal(err)
		}
		if strings.Contains(rst, "repl: role=follower") && strings.Contains(rst, "lag=0") {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("replica STATUS never showed lag=0:\n%s", rst)
		}
		time.Sleep(10 * time.Millisecond)
	}

	// Kill the follower, keep writing, restart it: the new follower
	// must resume from the applied LSN (no resync) and converge.
	f.Stop()
	for i := 0; i < 10; i++ {
		if _, err := w.Query(fmt.Sprintf(`INSERT INTO people VALUES (%d, 'late-%d')`, 200+i, i)); err != nil {
			t.Fatal(err)
		}
	}
	f2, err := repl.StartFollower(replDB, primSrv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(f2.Stop)
	replSrv.SetFollower(f2)
	waitApplied(t, replDB, primDB.WAL().DurableLSN())
	if info := f2.Info(); info.Resync {
		t.Fatalf("restarted follower demands a resync: %+v", info)
	}
	pw, err = w.Query(soakQuery)
	if err != nil {
		t.Fatal(err)
	}
	rw, err = rc.Query(soakQuery)
	if err != nil {
		t.Fatal(err)
	}
	if pw != rw {
		t.Fatalf("after restart, replica diverges:\nprimary:\n%s\nreplica:\n%s", pw, rw)
	}
}

// TestReplServerRetentionResync proves a follower that falls behind
// the primary's retention cap is told — deterministically — that it
// needs a full resync, rather than hanging or streaming garbage.
func TestReplServerRetentionResync(t *testing.T) {
	primSrv, primDB := startPrimaryServer(t, t.TempDir(),
		db.Options{WALSegmentBytes: 16 << 10}, Config{ReplRetainSegments: 2})
	w := dial(t, primSrv)
	if _, err := w.Query(`CREATE TABLE people (id INT, name TEXT)`); err != nil {
		t.Fatal(err)
	}
	if _, err := w.Query(`INSERT INTO people VALUES (0, 'seed')`); err != nil {
		t.Fatal(err)
	}

	// A follower connects, catches up, and disconnects.
	replDir := t.TempDir()
	replDB, err := db.OpenOpts(replDir, db.Options{Replica: true})
	if err != nil {
		t.Fatal(err)
	}
	defer replDB.Close()
	f, err := repl.StartFollower(replDB, primSrv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	waitApplied(t, replDB, primDB.WAL().DurableLSN())
	f.Stop()

	// The primary writes far past the retention cap and checkpoints:
	// GC breaks the absent follower's pin and unlinks its segments.
	pad := strings.Repeat("x", 400)
	for i := 0; ; i++ {
		if _, err := w.Query(fmt.Sprintf(`INSERT INTO people VALUES (%d, '%s-%d')`, 1+i, pad, i)); err != nil {
			t.Fatal(err)
		}
		if _, count := primDB.WAL().Segments(); count >= 6 {
			break
		}
		if i > 5000 {
			t.Fatal("primary never rolled enough segments")
		}
	}
	if _, err := primDB.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if first, _ := primDB.WAL().Segments(); first == 1 {
		t.Fatal("GC reclaimed nothing; the retention cap never engaged")
	}

	// The follower reconnects below the chain: the handshake must
	// report the deterministic resync-required refusal.
	f2, err := repl.StartFollower(replDB, primSrv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer f2.Stop()
	deadline := time.Now().Add(15 * time.Second)
	for {
		info := f2.Info()
		if info.Resync {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("lapsed follower never learned it needs a resync: %+v", info)
		}
		time.Sleep(10 * time.Millisecond)
	}
}
