package server

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"lexequal/internal/core"
	"lexequal/internal/db"
	"lexequal/internal/script"
	"lexequal/internal/sql"
)

// seedBooks creates and fills the Figure 1 catalog in dir.
func seedBooks(t *testing.T, dir string) {
	t.Helper()
	d, err := db.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	sess, err := sql.NewSession(d, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, stmt := range []string{
		`CREATE TABLE Books (Author NVARCHAR, Title NVARCHAR, Price FLOAT, Language TEXT)`,
		`INSERT INTO Books VALUES
			('Descartes' LANG french, 'Les Méditations Metaphysiques', 49.00, 'French'),
			('நேரு' LANG tamil, 'ஆசிய ஜோதி', 250, 'Tamil'),
			('Σαρρη' LANG greek, 'Παιχνίδια στο Πιάνο', 15.50, 'Greek'),
			('Nero' LANG english, 'The Coronation of the Virgin', 99.00, 'English'),
			('Nehru' LANG english, 'Discovery of India', 9.95, 'English'),
			('नेहरु' LANG hindi, 'भारत एक खोज', 175, 'Hindi')`,
	} {
		if _, err := sess.Exec(stmt); err != nil {
			t.Fatalf("%s\n-> %v", stmt, err)
		}
	}
	// The conventional name-table layout drives the lex-scan plans (the
	// ones that record PipelineCounters, surfaced by STATUS).
	texts := []core.Text{
		{Value: "Nehru", Lang: script.English},
		{Value: "नेहरु", Lang: script.Hindi},
		{Value: "நேரு", Lang: script.Tamil},
		{Value: "Nero", Lang: script.English},
		{Value: "Gandhi", Lang: script.English},
		{Value: "गांधी", Lang: script.Hindi},
		{Value: "Kathy", Lang: script.English},
		{Value: "Cathy", Lang: script.English},
	}
	if _, err := db.CreateNameTable(d, "names", sess.Op, texts, db.NameTableSpec{WithAux: true, WithIndexes: true}); err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
}

// startServer opens dir and serves it. Shutdown (idempotent) runs at
// cleanup; the server owns closing the db.
func startServer(t *testing.T, dir string, cfg Config) (*Server, *db.DB) {
	t.Helper()
	d, err := db.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := New(d, nil, cfg)
	if err != nil {
		d.Close()
		t.Fatal(err)
	}
	if err := srv.Start(); err != nil {
		d.Close()
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Shutdown() })
	return srv, d
}

func dial(t *testing.T, srv *Server) *Client {
	t.Helper()
	c, err := Dial(srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func TestServeBasic(t *testing.T) {
	dir := t.TempDir()
	seedBooks(t, dir)
	srv, _ := startServer(t, dir, Config{})
	c := dial(t, srv)

	out, err := c.Query(`SELECT Author FROM Books WHERE Author LEXEQUAL 'Nehru' THRESHOLD 0.30 ORDER BY Author`)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Nehru", "नेहरु", "நேரு"} {
		if !strings.Contains(out, want) {
			t.Errorf("result missing %q:\n%s", want, out)
		}
	}
	// Statement errors come back as RemoteError and leave the
	// connection usable.
	if _, err := c.Query(`SET lexequal_icsc = NaN`); err == nil {
		t.Error("NaN accepted over the wire")
	} else {
		var re *RemoteError
		if !errors.As(err, &re) || !strings.Contains(re.Msg, "[0,1]") {
			t.Errorf("unexpected error shape: %v", err)
		}
	}
	if _, err := c.Query(`SELECT COUNT(*) FROM Books`); err != nil {
		t.Errorf("connection unusable after statement error: %v", err)
	}
}

func TestStatusCommand(t *testing.T) {
	dir := t.TempDir()
	seedBooks(t, dir)
	srv, _ := startServer(t, dir, Config{MaxConns: 5})
	c := dial(t, srv)
	if _, err := c.Query(`SELECT id FROM names WHERE name LEXEQUAL 'Nehru' THRESHOLD 0.30`); err != nil {
		t.Fatal(err)
	}
	out, err := c.Query("status") // case-insensitive admin command
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"global:", "session:", "queries=1", "conns: active=1", "max=5",
		"pruned_sig=", "bitvec_ops=", "scalar_fallbacks=", "batches_built="} {
		if !strings.Contains(out, want) {
			t.Errorf("STATUS missing %q:\n%s", want, out)
		}
	}
	// The default model is dyadic: the naive scan above must have done
	// bit-parallel work and built a batch.
	if strings.Contains(out, "bitvec_ops=0 ") || strings.Contains(out, "batches_built=0 ") {
		t.Errorf("kernel counters flat after a LexEQUAL query:\n%s", out)
	}
	// A second connection's LexEQUAL traffic lands in the global
	// counters but not in the first session's.
	c2 := dial(t, srv)
	if _, err := c2.Query(`SELECT id FROM names WHERE name LEXEQUAL 'Nero' THRESHOLD 0.25`); err != nil {
		t.Fatal(err)
	}
	if g := srv.Global.Snapshot(); g.Queries != 2 {
		t.Errorf("global queries = %d, want 2", g.Queries)
	}
	out, err = c.Query("STATUS")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "session: queries=1 ") {
		t.Errorf("per-session counters leaked across connections:\n%s", out)
	}
}

func TestQueryDeadline(t *testing.T) {
	dir := t.TempDir()
	seedBooks(t, dir)
	srv, d := startServer(t, dir, Config{QueryTimeout: 100 * time.Millisecond, Logf: t.Logf})
	c := dial(t, srv)

	// Hold the db write lock so the statement blocks past the deadline.
	l := d.QueryLock()
	l.Lock()
	_, err := c.Query(`SELECT COUNT(*) FROM Books`)
	var re *RemoteError
	if !errors.As(err, &re) || !strings.Contains(re.Msg, "deadline") {
		l.Unlock()
		t.Fatalf("expected deadline error, got %v", err)
	}
	l.Unlock()
	// The abandoned statement finishes in the background; the next one
	// queues behind it and succeeds.
	if _, err := c.Query(`SELECT COUNT(*) FROM Books`); err != nil {
		t.Fatalf("connection dead after deadline: %v", err)
	}
}

func TestAcceptBackpressure(t *testing.T) {
	dir := t.TempDir()
	seedBooks(t, dir)
	srv, _ := startServer(t, dir, Config{MaxConns: 1})

	c1 := dial(t, srv)
	if _, err := c1.Query(`SELECT COUNT(*) FROM Books`); err != nil {
		t.Fatal(err)
	}
	// The second dial lands in the kernel backlog: it is not served
	// until the first connection releases the only slot.
	c2 := dial(t, srv)
	done := make(chan error, 1)
	go func() {
		_, err := c2.Query(`SELECT COUNT(*) FROM Books`)
		done <- err
	}()
	select {
	case err := <-done:
		t.Fatalf("second connection served beyond MaxConns=1 (err=%v)", err)
	case <-time.After(100 * time.Millisecond):
	}
	c1.Close()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("second connection failed after slot freed: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("second connection never served after slot freed")
	}
}

// TestDrainFinishesInflight pins the graceful-drain guarantee: a
// statement in flight when Shutdown starts still completes and its
// response reaches the client, and the pager is flushed exactly once
// across repeated Shutdowns.
func TestDrainFinishesInflight(t *testing.T) {
	dir := t.TempDir()
	seedBooks(t, dir)
	srv, d := startServer(t, dir, Config{})
	c := dial(t, srv)

	l := d.QueryLock()
	l.Lock()
	resp := make(chan string, 1)
	errCh := make(chan error, 1)
	go func() {
		out, err := c.Query(`INSERT INTO Books VALUES ('Saare' LANG english, 'Inflight', 1.0, 'English')`)
		if err != nil {
			errCh <- err
			return
		}
		resp <- out
	}()
	time.Sleep(50 * time.Millisecond) // let the INSERT reach the db lock

	drained := make(chan error, 1)
	go func() { drained <- srv.Shutdown() }()
	time.Sleep(50 * time.Millisecond) // let the drain sweep connections
	l.Unlock()                        // statement may now proceed

	select {
	case out := <-resp:
		if !strings.Contains(out, "1 row(s) inserted") {
			t.Errorf("in-flight response garbled: %q", out)
		}
	case err := <-errCh:
		t.Fatalf("in-flight response lost during drain: %v", err)
	case <-time.After(5 * time.Second):
		t.Fatal("in-flight response never arrived")
	}
	if err := <-drained; err != nil {
		t.Fatalf("drain failed: %v", err)
	}
	if err := srv.Shutdown(); err != nil {
		t.Fatalf("second Shutdown: %v", err)
	}
	if n := srv.Flushes(); n != 1 {
		t.Fatalf("pager flushed %d times, want exactly 1", n)
	}
	// The row the drain waited for is durable.
	d2, err := db.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	sess, err := sql.NewSession(d2, nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sess.Exec(`SELECT COUNT(*) FROM Books`)
	if err != nil {
		t.Fatal(err)
	}
	if n := res.Rows[0][0].I; n != 7 {
		t.Fatalf("row count after drain = %d, want 7", n)
	}
}

// soakScript is client i's deterministic statement sequence: mixed
// SELECT / LexEQUAL join / SET traffic, including statements that must
// fail identically every time.
func soakScript(i int) []string {
	icsc := []string{"0.25", "0.3", "0.2", "0.5"}[i%4]
	threshold := []string{"0.30", "0.25", "0.35"}[i%3]
	script := []string{
		`SET lexequal_threshold = ` + threshold,
		`SET lexequal_icsc = ` + icsc,
		`SELECT Author FROM Books WHERE Author LEXEQUAL 'Nehru' THRESHOLD ` + threshold + ` ORDER BY Author`,
		`SELECT B1.Author, B2.Author FROM Books B1, Books B2
			WHERE B1.Author LEXEQUAL B2.Author THRESHOLD 0.30 AND B1.Language <> B2.Language`,
		`SELECT Author, Price FROM Books WHERE Price < 100 ORDER BY Price`,
		`SELECT COUNT(*) FROM Books`,
		`SET lexequal_icsc = NaN`, // rejected, identically every time
		`SELECT id FROM names WHERE name LEXEQUAL 'Nero' THRESHOLD 0.25 ORDER BY id`,
		`SELECT Author FROM Books WHERE Author LEXEQUAL 'Nero' THRESHOLD 0.25 ORDER BY Author`,
		`SELECT nonsense FROM`, // parse error, identically every time
		`SHOW LEXSTATS`,        // per-session counters: deterministic per script
	}
	if i%2 == 0 {
		script = append(script, `EXPLAIN SELECT Author FROM Books WHERE Author LEXEQUAL 'Nehru' THRESHOLD 0.30`)
	}
	return script
}

// runSoakClient executes a script (rounds times) over one connection
// and returns the full response transcript, errors included.
func runSoakClient(addr string, i, rounds int) ([]string, error) {
	c, err := Dial(addr)
	if err != nil {
		return nil, err
	}
	defer c.Close()
	var transcript []string
	for r := 0; r < rounds; r++ {
		for _, stmt := range soakScript(i) {
			out, err := c.Query(stmt)
			if err != nil {
				var re *RemoteError
				if !errors.As(err, &re) {
					return nil, fmt.Errorf("client %d transport: %w", i, err)
				}
				transcript = append(transcript, "ERR: "+re.Msg)
				continue
			}
			transcript = append(transcript, "OK: "+out)
		}
	}
	return transcript, nil
}

// TestSoakConcurrentVsSerialReplay is the acceptance soak: 8 client
// connections hammer one server concurrently; the same scripts replayed
// one client at a time over a fresh server on the same data must
// produce byte-identical transcripts. Run under -race.
func TestSoakConcurrentVsSerialReplay(t *testing.T) {
	const clients = 8
	rounds := 3
	if testing.Short() {
		rounds = 1
	}
	dir := t.TempDir()
	seedBooks(t, dir)

	run := func(concurrent bool) [][]string {
		srv, _ := startServer(t, dir, Config{MaxConns: clients})
		transcripts := make([][]string, clients)
		errs := make([]error, clients)
		if concurrent {
			var wg sync.WaitGroup
			for i := 0; i < clients; i++ {
				wg.Add(1)
				go func(i int) {
					defer wg.Done()
					transcripts[i], errs[i] = runSoakClient(srv.Addr().String(), i, rounds)
				}(i)
			}
			wg.Wait()
		} else {
			for i := 0; i < clients; i++ {
				transcripts[i], errs[i] = runSoakClient(srv.Addr().String(), i, rounds)
			}
		}
		for i, err := range errs {
			if err != nil {
				t.Fatalf("client %d: %v", i, err)
			}
		}
		if err := srv.Shutdown(); err != nil {
			t.Fatalf("drain: %v", err)
		}
		if n := srv.Flushes(); n != 1 {
			t.Fatalf("pager flushed %d times, want 1", n)
		}
		return transcripts
	}

	concurrentRun := run(true)
	serialRun := run(false)
	for i := 0; i < clients; i++ {
		if len(concurrentRun[i]) != len(serialRun[i]) {
			t.Fatalf("client %d: %d concurrent responses vs %d serial",
				i, len(concurrentRun[i]), len(serialRun[i]))
		}
		for j := range concurrentRun[i] {
			if concurrentRun[i][j] != serialRun[i][j] {
				t.Errorf("client %d response %d diverged\nconcurrent: %s\nserial:     %s",
					i, j, concurrentRun[i][j], serialRun[i][j])
			}
		}
	}
}
