package server

import (
	"errors"
	"strings"
	"syscall"
	"testing"
	"time"

	"lexequal/internal/db"
	"lexequal/internal/store"
)

// TestBackgroundCheckpointerAndStatus proves the interval checkpointer
// fires while the server serves, STATUS reports the checkpoint
// counters, and the graceful drain lands one final checkpoint.
func TestBackgroundCheckpointerAndStatus(t *testing.T) {
	dir := t.TempDir()
	seedBooks(t, dir)
	srv, d := startServer(t, dir, Config{CheckpointInterval: 2 * time.Millisecond})
	// Any WAL growth at all qualifies for the next tick.
	d.SetAutoCheckpointBytes(1)
	c := dial(t, srv)

	if _, err := c.Query(`INSERT INTO Books VALUES ('Extra' LANG english, 'Extra', 1.00, 'English')`); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for d.WALStats().Checkpoints == 0 {
		if time.Now().After(deadline) {
			t.Fatal("background checkpointer never completed a checkpoint")
		}
		time.Sleep(2 * time.Millisecond)
	}

	out, err := c.Query("STATUS")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"ckpt: count=", "redo_floor=", "last_ckpt: lsn="} {
		if !strings.Contains(out, want) {
			t.Errorf("STATUS missing %q:\n%s", want, out)
		}
	}
	if ws := d.WALStats(); ws.RedoFloor == 0 {
		t.Errorf("checkpoint completed but the redo floor is still 0")
	}

	ckptsBefore := d.WALStats().Checkpoints
	if err := srv.Shutdown(); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	// The drain path runs one final checkpoint after the last statement.
	if got := d.WALStats().Checkpoints; got <= ckptsBefore {
		t.Errorf("drain did not checkpoint: %d before, %d after", ckptsBefore, got)
	}
}

// TestDisconnectMidCheckpointRollsBack pits a fuzzy checkpoint against
// a client that vanishes mid-transaction: the open transaction holds
// the query lock exclusively, so the checkpoint blocks on its first
// shared acquisition; the disconnect must roll the transaction back
// (Session.Reset in the handler's exit path), unblocking the
// checkpoint, and the loser's rows must not survive.
func TestDisconnectMidCheckpointRollsBack(t *testing.T) {
	dir := t.TempDir()
	seedBooks(t, dir)
	srv, d := startServer(t, dir, Config{})
	c := dial(t, srv)

	if _, err := c.Query("BEGIN"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Query(`INSERT INTO Books VALUES ('Zed' LANG english, 'Never', 1.00, 'English')`); err != nil {
		t.Fatal(err)
	}

	done := make(chan error, 1)
	go func() {
		_, err := d.Checkpoint()
		done <- err
	}()
	// The checkpoint must still be waiting on the transaction's lock.
	select {
	case err := <-done:
		t.Fatalf("checkpoint finished with a transaction still open: %v", err)
	case <-time.After(50 * time.Millisecond):
	}

	// The client vanishes mid-checkpoint.
	c.Close()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("checkpoint after disconnect: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("checkpoint still blocked 10s after the client disconnected")
	}

	c2 := dial(t, srv)
	out, err := c2.Query(`SELECT Author FROM Books WHERE Author = 'Zed'`)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(out, "Zed") {
		t.Fatalf("rolled-back row survived the disconnect:\n%s", out)
	}
}

// TestCheckpointENOSPCServerKeepsServing fills the disk for exactly the
// checkpoint's next write: the checkpoint must fail with ENOSPC while
// the server keeps answering reads and writes, the WAL must keep its
// old redo floor, and a retried checkpoint once space returns must
// succeed.
func TestCheckpointENOSPCServerKeepsServing(t *testing.T) {
	dir := t.TempDir()
	seedBooks(t, dir)
	ffs := &store.FaultFS{}
	d, err := db.OpenOpts(dir, db.Options{FS: ffs})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := New(d, nil, Config{})
	if err != nil {
		d.Close()
		t.Fatal(err)
	}
	if err := srv.Start(); err != nil {
		d.Close()
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Shutdown() })
	c := dial(t, srv)

	if _, err := c.Query(`INSERT INTO Books VALUES ('Pre' LANG english, 'Pre', 1.00, 'English')`); err != nil {
		t.Fatal(err)
	}
	// The connection is idle now, so the next write through the VFS is
	// the checkpoint's own first write.
	ffs.ArmWrite(ffs.Writes()+1, store.FaultDiskFull)
	if _, err := d.Checkpoint(); !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("checkpoint on a full disk: err = %v, want ENOSPC", err)
	}
	if ws := d.WALStats(); ws.RedoFloor != 0 || ws.CheckpointFailures != 1 {
		t.Fatalf("after failed checkpoint: floor=%d failures=%d, want floor 0 and 1 failure",
			ws.RedoFloor, ws.CheckpointFailures)
	}

	// The server keeps serving both reads and writes.
	out, err := c.Query(`SELECT COUNT(*) FROM Books`)
	if err != nil {
		t.Fatalf("read after failed checkpoint: %v", err)
	}
	if !strings.Contains(out, "7") {
		t.Fatalf("unexpected count after failed checkpoint:\n%s", out)
	}
	if _, err := c.Query(`INSERT INTO Books VALUES ('Post' LANG english, 'Post', 1.00, 'English')`); err != nil {
		t.Fatalf("write after failed checkpoint: %v", err)
	}

	// Space is back (the disk-full fault fires once): the retry lands.
	st, err := d.Checkpoint()
	if err != nil {
		t.Fatalf("retried checkpoint: %v", err)
	}
	if st.Floor == 0 {
		t.Fatal("retried checkpoint declared no floor")
	}
	if err := srv.Shutdown(); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
}
