package server

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"lexequal/internal/db"
	"lexequal/internal/sql"
)

// TestGroupCommitSoak drives 8 concurrent sessions of autocommit
// INSERTs through the server and asserts the WAL batched their commits:
// at least 2x fewer fsyncs than commits. Durability is awaited after
// each statement's locks drop, so while one session's fsync is in
// flight the others append their commit records and join the same
// flush.
func TestGroupCommitSoak(t *testing.T) {
	dir := t.TempDir()
	func() {
		d, err := db.Open(dir)
		if err != nil {
			t.Fatal(err)
		}
		defer d.Close()
		sess, err := sql.NewSession(d, nil)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := sess.Exec(`CREATE TABLE soak (k INT, v TEXT)`); err != nil {
			t.Fatal(err)
		}
	}()

	srv, d := startServer(t, dir, Config{GroupCommit: 2 * time.Millisecond})
	const (
		sessions = 8
		rounds   = 25
	)
	base := d.WALStats()

	var wg sync.WaitGroup
	errs := make(chan error, sessions)
	for i := 0; i < sessions; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c, err := Dial(srv.Addr().String())
			if err != nil {
				errs <- err
				return
			}
			defer c.Close()
			for r := 0; r < rounds; r++ {
				stmt := fmt.Sprintf(`INSERT INTO soak VALUES (%d, 'w%d-r%d')`, i*rounds+r, i, r)
				if _, err := c.Query(stmt); err != nil {
					errs <- fmt.Errorf("worker %d round %d: %w", i, r, err)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	ws := d.WALStats()
	commits := ws.Commits - base.Commits
	syncs := ws.Syncs - base.Syncs
	if commits != sessions*rounds {
		t.Fatalf("commits = %d, want %d", commits, sessions*rounds)
	}
	if syncs*2 > commits {
		t.Fatalf("group commit ineffective: %d fsyncs for %d commits (want at least 2x fewer)", syncs, commits)
	}
	t.Logf("group commit: %d commits in %d fsyncs (%.1fx batching)", commits, syncs, float64(commits)/float64(syncs))

	// Every acknowledged row is present, and STATUS reports the log.
	c := dial(t, srv)
	out, err := c.Query(`SELECT COUNT(*) FROM soak`)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, fmt.Sprint(sessions*rounds)) {
		t.Fatalf("row count mismatch after soak:\n%s", out)
	}
	out, err = c.Query("STATUS")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "wal: commits=") {
		t.Fatalf("STATUS missing the wal line:\n%s", out)
	}
}

// TestDisconnectMidTransactionRollsBack kills a connection with an open
// explicit transaction and checks the server releases the exclusive
// lock (other sessions can write) and the dangling writes are gone.
func TestDisconnectMidTransactionRollsBack(t *testing.T) {
	dir := t.TempDir()
	seedBooks(t, dir)
	srv, _ := startServer(t, dir, Config{})

	c1 := dial(t, srv)
	if _, err := c1.Query(`BEGIN`); err != nil {
		t.Fatal(err)
	}
	if _, err := c1.Query(`INSERT INTO Books VALUES ('Ghost' LANG english, 'Dangling', 1.0, 'English')`); err != nil {
		t.Fatal(err)
	}
	c1.Close() // vanish mid-transaction

	c2 := dial(t, srv)
	done := make(chan error, 1)
	go func() {
		_, err := c2.Query(`INSERT INTO Books VALUES ('Next' LANG english, 'After', 2.0, 'English')`)
		done <- err
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("write blocked: disconnect did not release the transaction's lock")
	}
	out, err := c2.Query(`SELECT COUNT(*) FROM Books WHERE Author = 'Ghost'`)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "0") {
		t.Fatalf("dangling transaction's write survived:\n%s", out)
	}
}
