// Package server is the concurrent serving layer: lexequald exposes
// the SQL subset (with the LexEQUAL extensions) over a length-prefixed
// TCP protocol, one sql.Session per connection, against one shared
// database.
//
// Concurrency model (DESIGN.md §10): the server owns the top of the
// latch hierarchy. Each connection gets its own Session, whose Exec
// serializes that connection's statements and takes the db-level query
// lock shared (SELECT) or exclusive (DML/DDL); below that the storage
// latches in internal/store make pager and structure access safe. The
// server itself adds a connection limit with accept backpressure, a
// per-query deadline, a slow-query log, and a graceful drain that
// finishes in-flight queries and flushes the pager exactly once.
package server

import (
	"bufio"
	"errors"
	"fmt"
	"log"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"lexequal"
	"lexequal/internal/core"
	"lexequal/internal/db"
	"lexequal/internal/metrics"
	"lexequal/internal/repl"
	"lexequal/internal/sql"
)

// Config tunes a Server. The zero value picks sensible defaults.
type Config struct {
	// Addr is the TCP listen address; default "127.0.0.1:0" (an
	// OS-assigned port, reported by Addr after Start).
	Addr string
	// MaxConns caps concurrently served connections; further dials are
	// left in the kernel accept backlog until a slot frees (accept
	// backpressure, not an error). Default 64.
	MaxConns int
	// QueryTimeout bounds one statement's execution. A statement that
	// exceeds it gets an error response; the engine cannot abandon a
	// running plan mid-flight, so the statement runs to completion in
	// the background and the connection's next statement waits behind
	// it (per-session serialization). 0 disables the deadline.
	QueryTimeout time.Duration
	// SlowQuery is the slow-query-log threshold: statements at or above
	// it are logged with their duration. 0 disables the log.
	SlowQuery time.Duration
	// GroupCommit is the WAL group-commit collection window: how long
	// the first committer in a batch waits for followers before issuing
	// the shared fsync. 0 keeps the database's current window (the WAL
	// default); sessions can still adjust it with SET
	// lexequal_wal_flush.
	GroupCommit time.Duration
	// CheckpointInterval is how often the background checkpointer polls
	// the database; each tick calls db.CheckpointIfNeeded, which only
	// does work once enough WAL has accumulated since the last
	// checkpoint (so a short interval is cheap). A failed checkpoint is
	// logged and retried on the next tick; serving is never stalled
	// because the checkpoint is fuzzy. 0 disables the background
	// checkpointer (explicit CHECKPOINT statements still work). The
	// graceful drain always runs one final checkpoint so a restart
	// replays almost nothing.
	CheckpointInterval time.Duration
	// ReplRetainSegments caps how many live WAL segments connected
	// followers may hold back from checkpoint GC (DESIGN.md §16); a
	// follower that falls further behind is disconnected into
	// resync-required. 0 = unlimited retention while a follower is
	// connected.
	ReplRetainSegments int
	// Logf receives server log lines; default log.Printf.
	Logf func(format string, args ...any)
}

// Server serves SQL sessions over TCP against one database.
type Server struct {
	cfg Config
	db  *db.DB
	op  *core.Operator

	// Global accumulates PipelineCounters across every connection (each
	// session's counters mirror into it); per-connection counters stay
	// on the session. Both are reported by the STATUS admin command.
	Global metrics.PipelineCounters

	// primary streams WAL records to followers (nil on a replica or a
	// WAL-less database). A connection whose request is the replication
	// handshake is handed to it instead of the SQL path.
	primary *repl.Primary
	// follower is the replica-side apply loop, wired in by the daemon
	// with SetFollower so STATUS can report lag; nil on a primary.
	follower *repl.Follower

	lis      net.Listener
	sem      chan struct{}  // connection slots (accept backpressure)
	handlers sync.WaitGroup // one per accepted connection
	queries  sync.WaitGroup // one per in-flight statement (incl. timed-out ones)
	accepted atomic.Int64
	draining atomic.Bool

	// ckptStop ends the background checkpointer; ckptDone is closed when
	// it exits. Both are nil when CheckpointInterval is 0.
	ckptStop chan struct{}
	ckptDone chan struct{}

	mu     sync.Mutex
	active map[net.Conn]struct{}

	drainOnce sync.Once
	drainErr  error
	// flushes counts db.Close calls issued by the drain path; tests
	// assert it stays at one no matter how often Shutdown is invoked.
	flushes atomic.Int32
}

// New builds a server over an open database. A nil op selects the
// default operator; the operator is shared by every session (it is
// concurrency-safe), so the transcription cache warms across
// connections. Sessions that SET cost parameters rebuild a private
// operator and leave the shared one untouched.
func New(d *db.DB, op *core.Operator, cfg Config) (*Server, error) {
	if op == nil {
		var err error
		op, err = core.New(core.Options{})
		if err != nil {
			return nil, err
		}
	}
	if cfg.Addr == "" {
		cfg.Addr = "127.0.0.1:0"
	}
	if cfg.MaxConns <= 0 {
		cfg.MaxConns = 64
	}
	if cfg.Logf == nil {
		cfg.Logf = log.Printf
	}
	if cfg.GroupCommit > 0 {
		d.SetWALFlushInterval(cfg.GroupCommit)
	}
	s := &Server{
		cfg:    cfg,
		db:     d,
		op:     op,
		sem:    make(chan struct{}, cfg.MaxConns),
		active: make(map[net.Conn]struct{}),
	}
	if l := d.WAL(); l != nil && !d.IsReplica() {
		s.primary = repl.NewPrimary(l, repl.Config{RetainSegments: cfg.ReplRetainSegments})
	}
	return s, nil
}

// SetFollower wires the replica-side apply loop into STATUS reporting.
// The daemon calls it right after StartFollower; the server does not
// own the follower's lifecycle (the daemon stops it before Shutdown).
func (s *Server) SetFollower(f *repl.Follower) { s.follower = f }

// Primary exposes the replication streaming service (nil on a replica
// or WAL-less database) for tests and status tooling.
func (s *Server) Primary() *repl.Primary { return s.primary }

// Start begins listening and serving. It returns once the listener is
// bound; Addr then reports the actual address.
func (s *Server) Start() error {
	lis, err := net.Listen("tcp", s.cfg.Addr)
	if err != nil {
		return err
	}
	s.lis = lis
	s.handlers.Add(1)
	go s.acceptLoop()
	if s.cfg.CheckpointInterval > 0 {
		s.ckptStop = make(chan struct{})
		s.ckptDone = make(chan struct{})
		go s.checkpointLoop()
	}
	return nil
}

// checkpointLoop is the background checkpointer: every tick it asks the
// database whether enough WAL has accumulated to be worth a checkpoint.
// Failures (a full disk, say) are logged and retried next tick — the
// WAL keeps its old redo floor, so nothing is lost, recovery is just
// longer until a checkpoint succeeds again.
func (s *Server) checkpointLoop() {
	defer close(s.ckptDone)
	t := time.NewTicker(s.cfg.CheckpointInterval)
	defer t.Stop()
	for {
		select {
		case <-s.ckptStop:
			return
		case <-t.C:
			st, ran, err := s.db.CheckpointIfNeeded()
			if err != nil {
				s.cfg.Logf("lexequald: checkpoint: %v", err)
				continue
			}
			if ran {
				s.cfg.Logf("lexequald: checkpoint complete: lsn=%d floor=%d gc=%d in %v",
					st.LSN, st.Floor, st.SegmentsRemoved, st.Duration)
			}
		}
	}
}

// Addr is the bound listen address (valid after Start).
func (s *Server) Addr() net.Addr { return s.lis.Addr() }

func (s *Server) acceptLoop() {
	defer s.handlers.Done()
	for {
		// Take a connection slot before accepting: at MaxConns in
		// flight we stop calling Accept and dials queue in the kernel
		// backlog instead of being served (backpressure).
		s.sem <- struct{}{}
		conn, err := s.lis.Accept()
		if err != nil {
			<-s.sem
			if s.draining.Load() || errors.Is(err, net.ErrClosed) {
				return
			}
			s.cfg.Logf("lexequald: accept: %v", err)
			continue
		}
		s.accepted.Add(1)
		s.handlers.Add(1)
		go s.handle(conn)
	}
}

func (s *Server) track(conn net.Conn) {
	s.mu.Lock()
	s.active[conn] = struct{}{}
	s.mu.Unlock()
	// A drain that swept active conns before this one was tracked must
	// still interrupt its next read.
	if s.draining.Load() {
		conn.SetReadDeadline(time.Now())
	}
}

func (s *Server) untrack(conn net.Conn) {
	s.mu.Lock()
	delete(s.active, conn)
	s.mu.Unlock()
}

func (s *Server) handle(conn net.Conn) {
	defer s.handlers.Done()
	defer func() { <-s.sem }()
	defer conn.Close()
	s.track(conn)
	defer s.untrack(conn)

	sess, err := sql.NewSession(s.db, s.op)
	if err != nil {
		writeFrame(conn, errPayload(err))
		return
	}
	sess.Pipeline.SetMirror(&s.Global)
	// A client that vanishes mid-transaction must not orphan the
	// exclusive query lock: roll its transaction back on the way out.
	defer func() {
		if err := sess.Reset(); err != nil {
			s.cfg.Logf("lexequald: rollback on disconnect: %v", err)
		}
	}()

	r := bufio.NewReader(conn)
	for {
		payload, err := readFrame(r)
		if err != nil {
			// EOF, client gone, or the drain deadline firing between
			// statements — never mid-statement, so no response is lost.
			return
		}
		stmt := strings.TrimSpace(string(payload))
		if repl.IsHandshake(stmt) {
			// The connection becomes a replication stream for its whole
			// remaining lifetime (it occupies its connection slot like any
			// client). The drain's read deadline interrupts its ack reader,
			// which stops the stream, so Shutdown proceeds normally.
			if s.primary == nil {
				writeFrame(conn, errPayload(fmt.Errorf("server: this server cannot serve replication (replica or WAL disabled)")))
				return
			}
			if err := s.primary.Serve(conn, r, stmt); err != nil {
				s.cfg.Logf("lexequald: repl stream %s: %v", conn.RemoteAddr(), err)
			}
			return
		}
		resp := s.execute(sess, stmt)
		if err := writeFrame(conn, resp); err != nil {
			s.cfg.Logf("lexequald: write: %v", err)
			return
		}
		if s.draining.Load() {
			return
		}
	}
}

// execute runs one request payload and renders the response frame.
func (s *Server) execute(sess *sql.Session, stmt string) []byte {
	if IsAdminStatus(stmt) {
		return okPayload(s.status(sess))
	}
	type outcome struct {
		res *sql.Result
		err error
	}
	start := time.Now()
	ch := make(chan outcome, 1)
	s.queries.Add(1)
	go func() {
		defer s.queries.Done()
		res, err := sess.Exec(stmt)
		ch <- outcome{res, err}
	}()
	var out outcome
	if s.cfg.QueryTimeout > 0 {
		t := time.NewTimer(s.cfg.QueryTimeout)
		select {
		case out = <-ch:
			t.Stop()
		case <-t.C:
			// The plan cannot be cancelled mid-flight; it finishes in
			// the background (s.queries keeps the drain honest) and the
			// session mutex holds this connection's next statement back
			// until then.
			s.cfg.Logf("lexequald: query exceeded deadline %v: %s", s.cfg.QueryTimeout, stmt)
			return errPayload(fmt.Errorf("server: query exceeded deadline %v", s.cfg.QueryTimeout))
		}
	} else {
		out = <-ch
	}
	if d := time.Since(start); s.cfg.SlowQuery > 0 && d >= s.cfg.SlowQuery {
		s.cfg.Logf("lexequald: slow query (%v): %s", d, stmt)
	}
	if out.err != nil {
		return errPayload(out.err)
	}
	return okPayload(lexequal.Format(out.res))
}

// status renders the STATUS admin command: global counters (all
// connections), this connection's counters, and connection accounting.
func (s *Server) status(sess *sql.Session) string {
	s.mu.Lock()
	activeConns := len(s.active)
	s.mu.Unlock()
	ws := s.db.WALStats()
	wal := "wal: disabled"
	if ws.Enabled {
		wal = fmt.Sprintf("wal: commits=%d syncs=%d durable_lsn=%d last_lsn=%d flush=%v",
			ws.Commits, ws.Syncs, ws.DurableLSN, ws.LastLSN, ws.FlushInterval)
		wal += fmt.Sprintf("\nckpt: count=%d failures=%d redo_floor=%d since_ckpt=%dB segments=%d first_seg=%d gc_removed=%d",
			ws.Checkpoints, ws.CheckpointFailures, ws.RedoFloor,
			ws.SinceCheckpoint, ws.Segments, ws.FirstSegment, ws.SegmentsGCed)
		if ws.Checkpoints > 0 {
			wal += fmt.Sprintf("\nlast_ckpt: lsn=%d floor=%d gc=%d duration=%v",
				ws.LastCheckpoint.LSN, ws.LastCheckpoint.Floor,
				ws.LastCheckpoint.SegmentsRemoved, ws.LastCheckpoint.Duration)
		}
	}
	if ms := s.db.MVCCStats(); ms.Enabled {
		wal += fmt.Sprintf("\nmvcc: inflight=%d snapshots=%d max_commit=%d conflicts=%d commit_registry=%d",
			ms.InFlight, ms.Snapshots, ms.MaxCommit, ms.Conflicts, ms.CommitRegistry)
	}
	if rs := s.db.RecoveryStats(); rs.Ran {
		wal += fmt.Sprintf("\nrecovery: duration=%v floor=%d scanned=%d skipped=%d replayed=%d applied=%d",
			rs.Duration, rs.Redo.Floor, rs.Redo.Scanned, rs.Redo.Skipped,
			rs.Redo.Replayed, rs.Redo.Applied)
	}
	if line := s.replStatus(); line != "" {
		wal += "\n" + line
	}
	return fmt.Sprintf("global:  %s\nsession: %s\nconns: active=%d accepted=%d max=%d draining=%v\n%s\n",
		s.Global.Snapshot(), sess.Pipeline.Snapshot(),
		activeConns, s.accepted.Load(), s.cfg.MaxConns, s.draining.Load(), wal)
}

// replStatus renders the replication STATUS lines: on a primary the
// follower roster with per-follower acked LSN and lag; on a follower
// the applied LSN and lag behind the primary. Empty when replication
// is not in play (no follower ever connected and not a replica).
func (s *Server) replStatus() string {
	if s.follower != nil {
		info := s.follower.Info()
		line := fmt.Sprintf("repl: role=follower primary=%s connected=%v applied_lsn=%d primary_lsn=%d lag=%d batches=%d records=%d",
			info.Primary, info.Connected, info.AppliedLSN, info.PrimaryLSN, info.Lag, info.Batches, info.Records)
		if info.Resync {
			line += " resync_required=true"
		}
		if info.LastErr != "" {
			line += fmt.Sprintf(" last_err=%q", info.LastErr)
		}
		return line
	}
	if s.db.IsReplica() {
		return fmt.Sprintf("repl: role=follower applied_lsn=%d (apply loop not running)", s.db.AppliedLSN())
	}
	if s.primary == nil {
		return ""
	}
	followers := s.primary.Followers()
	line := fmt.Sprintf("repl: role=primary followers=%d", len(followers))
	last := s.db.WALStats().LastLSN
	for _, f := range followers {
		lag := uint64(0)
		if last > f.AckedLSN {
			lag = last - f.AckedLSN
		}
		line += fmt.Sprintf("\nrepl_follower: id=%s acked_lsn=%d lag=%d since=%v",
			f.ID, f.AckedLSN, lag, f.Since.Round(time.Millisecond))
	}
	return line
}

// Shutdown gracefully drains the server: stop accepting, let every
// in-flight statement finish and its response reach the client, then
// close the database — flushing the pager — exactly once. Repeated
// calls return the first drain's result.
func (s *Server) Shutdown() error {
	s.drainOnce.Do(func() {
		s.draining.Store(true)
		if s.lis != nil {
			s.lis.Close()
		}
		// Interrupt connections idle in a read; a connection mid-query
		// is not reading, so it completes the statement, writes the
		// response (writes are unaffected), and exits on its next read.
		s.mu.Lock()
		for c := range s.active {
			c.SetReadDeadline(time.Now())
		}
		s.mu.Unlock()
		// Stop replication streams explicitly too: their writers may be
		// blocked in the durability wait rather than a read, which the
		// deadline alone does not interrupt.
		if s.primary != nil {
			s.primary.Close()
		}
		s.handlers.Wait()
		// Statements abandoned by the query deadline may still be
		// running after their handler exited; the pager must not flush
		// underneath them.
		s.queries.Wait()
		if s.ckptStop != nil {
			close(s.ckptStop)
			<-s.ckptDone
		}
		// A final checkpoint while draining: the next startup then seeks
		// to a floor just below the tail and replays almost nothing.
		// Failure is non-fatal — Close flushes everything anyway, and the
		// WAL simply keeps its older floor.
		if s.db.WALStats().Enabled {
			if st, err := s.db.Checkpoint(); err != nil {
				s.cfg.Logf("lexequald: drain checkpoint: %v", err)
			} else {
				s.cfg.Logf("lexequald: drain checkpoint complete: lsn=%d floor=%d gc=%d",
					st.LSN, st.Floor, st.SegmentsRemoved)
			}
		}
		s.flushes.Add(1)
		s.drainErr = s.db.Close()
	})
	return s.drainErr
}

// Flushes reports how many times the drain path closed (and thereby
// flushed) the database. It is exposed for tests, which assert exactly
// one flush across repeated Shutdowns.
func (s *Server) Flushes() int { return int(s.flushes.Load()) }
