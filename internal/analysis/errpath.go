package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// ErrPath is the path-sensitive resource-balance analyzer. For every
// acquisition of an engine resource — a page pinned by Pager.Get or
// Pager.Allocate, a mutex lock, a transaction opened by DB.Begin or
// DB.BeginTx, an MVCC snapshot from DB.AcquireSnap (a leaked snapshot
// pins the version-GC horizon forever), a WAL stream reader from
// Log.NewStreamReader (abandoned readers leak the tail-segment handle
// replication holds open) — it
// walks the function's CFG and proves the resource is released,
// deferred, or visibly handed off on *every* path to the exit,
// including early error returns. It subsumes the old pinbalance
// analyzer (whose discarded-result checks it keeps) and upgrades its
// per-function heuristic to a per-path proof.
//
// The analysis is error-aware: after `p, err := pg.Get(id)`, the edge
// guarded by `err != nil` carries no obligation (a failed acquisition
// pins nothing), and the obligation on the success edge becomes
// unconditional. Reassigning err before it is checked re-arms the
// obligation.
//
// Handing a resource to a callee only discharges the obligation when
// the callee might keep or release it. Callees that merely *read* a
// pointer parameter (the heap's pageSlots/slotRecord helpers) are
// recognized by an interprocedural borrow inference, so a page lent to
// a reader still needs its Unpin.
//
// Locks are checked only when the function contains at least one
// matching unlock — functions like Session.lockShared exist to hand a
// held lock to their caller — and functions whose name ends in
// "Locked" are exempt entirely, as their contract is to run (or end)
// with the lock held.
var ErrPath = &Analyzer{
	Name: "errpath",
	Doc: "prove every pin, lock, and transaction is released on every " +
		"CFG path, including early error returns",
	RunProgram: runErrPath,
}

// resKind separates the tracked resource classes.
type resKind int

const (
	resPin resKind = iota
	resLock
	resTxn
	resSnap
	resStream
)

// resLevel is the per-path obligation state: levels join by max.
type resLevel int

const (
	levelBot  resLevel = iota // unreached
	levelNone                 // released, escaped, or failed acquisition
	levelCond                 // acquired, success not yet established
	levelHeld                 // acquired on this path; release required
)

// resSite is one acquisition whose balance is being proven.
type resSite struct {
	kind   resKind
	node   ast.Node     // the acquiring statement as it appears in Block.Nodes
	obj    types.Object // pin/txn result variable
	errObj types.Object // error result variable, if bound
	lock   LockID       // lock sites
	mode   modeBits
	method string // "Get", "Allocate", "Begin", "Lock", "RLock"
	block  int
	pos    token.Pos
}

func (s *resSite) initLevel() resLevel {
	if s.errObj != nil {
		return levelCond
	}
	return levelHeld
}

func runErrPath(pass *ProgramPass) error {
	cg := pass.Prog.CallGraph()
	borrows := computeParamBorrows(cg)
	for _, id := range cg.Order {
		fn := cg.Funcs[id]
		ef := &errpathFunc{
			fn:       fn,
			cg:       cg,
			pass:     pass,
			info:     fn.Pkg.Info,
			borrows:  borrows,
			resolver: newLockResolver(fn),
		}
		ef.run()
	}
	return nil
}

// errpathFunc checks one function body.
type errpathFunc struct {
	fn       *FuncNode
	cg       *CallGraph
	pass     *ProgramPass
	info     *types.Info
	borrows  map[FuncID][]bool
	resolver *lockResolver

	// Release inventory used by heuristics.
	releasedLocks map[LockID]modeBits // locks with a matching unlock anywhere in the body
	closureUnpin  map[types.Object]bool
	closureUnlock map[LockID]modeBits
	closureTxDone map[types.Object]bool
	closureSnap   map[types.Object]bool
	closureStream map[types.Object]bool
}

func (ef *errpathFunc) run() {
	ef.scanReleases()
	ef.checkDiscards()
	for _, site := range ef.collectSites() {
		ef.checkSite(site)
	}
}

// scanReleases inventories every release in the body: which locks have
// an unlock at all, and which resources a deferred closure releases
// (a closure reads its captured variable at exit time, so it covers
// acquisitions registered after the defer as well).
func (ef *errpathFunc) scanReleases() {
	ef.releasedLocks = map[LockID]modeBits{}
	ef.closureUnpin = map[types.Object]bool{}
	ef.closureUnlock = map[LockID]modeBits{}
	ef.closureTxDone = map[types.Object]bool{}
	ef.closureSnap = map[types.Object]bool{}
	ef.closureStream = map[types.Object]bool{}
	ast.Inspect(ef.fn.Body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if op := ef.resolver.lockOpOf(call); op != nil && !op.acquire {
				ef.releasedLocks[op.lock] |= op.mode
			}
		}
		d, ok := n.(*ast.DeferStmt)
		if !ok {
			return true
		}
		lit, ok := ast.Unparen(d.Call.Fun).(*ast.FuncLit)
		if !ok {
			// A direct deferred unlock also runs at exit regardless of
			// where the lock is (re-)acquired: a lock's identity is
			// positionally fixed, unlike a pin's captured value, so
			// `defer l.mu.Unlock()` covers a later re-acquire of l.mu
			// (the WAL group-commit leader drops and retakes fmu under
			// a defer registered at the top).
			if op := ef.resolver.lockOpOf(d.Call); op != nil && !op.acquire {
				ef.closureUnlock[op.lock] |= op.mode
			}
			return true
		}
		ast.Inspect(lit.Body, func(m ast.Node) bool {
			call, ok := m.(*ast.CallExpr)
			if !ok {
				return true
			}
			if op := ef.resolver.lockOpOf(call); op != nil && !op.acquire {
				ef.closureUnlock[op.lock] |= op.mode
				return true
			}
			if obj := unpinArg(ef.info, call); obj != nil {
				ef.closureUnpin[obj] = true
				return true
			}
			if obj := snapReleaseArg(ef.info, call); obj != nil {
				ef.closureSnap[obj] = true
				return true
			}
			if obj := txReleaseRecv(ef.info, call); obj != nil {
				ef.closureTxDone[obj] = true
				return true
			}
			if obj := streamCloseRecv(ef.info, call); obj != nil {
				ef.closureStream[obj] = true
			}
			return true
		})
		return true
	})
}

// checkDiscards reports Get/Allocate results that are thrown away —
// carried over from pinbalance, these pins can never be released.
func (ef *errpathFunc) checkDiscards() {
	walkStack(ef.fn.Body, func(n ast.Node, stack []ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		method := pagerAcquireMethod(ef.info, call)
		if method == "" || len(stack) == 0 {
			return true
		}
		switch p := stack[len(stack)-1].(type) {
		case *ast.ExprStmt:
			ef.pass.Reportf(call.Pos(), "result of Pager.%s is discarded; the pinned page leaks", method)
		case *ast.AssignStmt:
			if len(p.Rhs) == 1 && p.Rhs[0] == call && len(p.Lhs) >= 1 {
				if id, ok := p.Lhs[0].(*ast.Ident); ok && id.Name == "_" {
					ef.pass.Reportf(call.Pos(), "pinned page from Pager.%s is discarded; the pin can never be released", method)
				}
			}
		}
		return true
	})
}

// collectSites finds the acquisitions to prove balanced.
func (ef *errpathFunc) collectSites() []*resSite {
	var sites []*resSite
	g := ef.fn.CFG()
	lockExempt := strings.HasSuffix(funcBaseName(ef.fn), "Locked")
	for bi, blk := range g.Blocks {
		if !blk.Live {
			continue
		}
		for _, n := range blk.Nodes {
			switch n := n.(type) {
			case *ast.AssignStmt:
				if s := ef.assignSite(n, bi); s != nil {
					sites = append(sites, s)
				}
			case *ast.ExprStmt:
				call, ok := n.X.(*ast.CallExpr)
				if !ok || lockExempt {
					continue
				}
				op := ef.resolver.lockOpOf(call)
				if op == nil || !op.acquire {
					continue
				}
				// Only prove balance for locks this function also
				// releases; a lock acquired and handed to the caller
				// (lockShared) is a different contract. TryLock's
				// conditional acquisition is out of scope.
				if ef.releasedLocks[op.lock]&op.mode == 0 || strings.HasPrefix(methodName(call), "Try") {
					continue
				}
				sites = append(sites, &resSite{
					kind:   resLock,
					node:   n,
					lock:   op.lock,
					mode:   op.mode,
					method: methodName(call),
					block:  bi,
					pos:    call.Pos(),
				})
			}
		}
	}
	return sites
}

// assignSite recognizes `v, err := x.Get(...)` / Allocate / Begin.
func (ef *errpathFunc) assignSite(n *ast.AssignStmt, block int) *resSite {
	if len(n.Rhs) != 1 {
		return nil
	}
	call, ok := ast.Unparen(n.Rhs[0]).(*ast.CallExpr)
	if !ok {
		return nil
	}
	kind := resPin
	method := pagerAcquireMethod(ef.info, call)
	if method == "" {
		switch {
		case methodCallOn(ef.info, call, "DB", "Begin") != nil:
			kind, method = resTxn, "Begin"
		case methodCallOn(ef.info, call, "DB", "BeginTx") != nil:
			kind, method = resTxn, "BeginTx"
		case methodCallOn(ef.info, call, "DB", "AcquireSnap") != nil:
			kind, method = resSnap, "AcquireSnap"
		case methodCallOn(ef.info, call, "Log", "NewStreamReader") != nil:
			kind, method = resStream, "NewStreamReader"
		default:
			return nil
		}
	}
	if len(n.Lhs) == 0 {
		return nil
	}
	id, ok := n.Lhs[0].(*ast.Ident)
	if !ok || id.Name == "_" {
		return nil // discard cases are checkDiscards' job
	}
	obj := ef.info.ObjectOf(id)
	if obj == nil {
		return nil
	}
	s := &resSite{kind: kind, node: n, obj: obj, method: method, block: block, pos: call.Pos()}
	if len(n.Lhs) >= 2 {
		if eid, ok := n.Lhs[len(n.Lhs)-1].(*ast.Ident); ok && eid.Name != "_" {
			if eobj := ef.info.ObjectOf(eid); eobj != nil && isErrorType(eobj.Type()) {
				s.errObj = eobj
			}
		}
	}
	return s
}

// checkSite runs the forward obligation dataflow for one acquisition.
func (ef *errpathFunc) checkSite(site *resSite) {
	g := ef.fn.CFG()
	in := make([]resLevel, len(g.Blocks))
	exit := levelBot

	work := []int{site.block}
	in[site.block] = levelNone // pre-acquire prefix carries no obligation
	inWork := map[int]bool{site.block: true}
	for len(work) > 0 {
		bi := work[0]
		work = work[1:]
		inWork[bi] = false
		st := in[bi]
		for _, n := range g.Blocks[bi].Nodes {
			st = ef.xfer(site, n, st)
		}
		for _, e := range g.Blocks[bi].Succs {
			if e.To == g.Exit {
				if !e.Panic && st > exit {
					exit = st
				}
				continue
			}
			next := gateEdge(ef.info, site, st, e)
			if next > in[e.To.Index] {
				in[e.To.Index] = next
				if !inWork[e.To.Index] {
					inWork[e.To.Index] = true
					work = append(work, e.To.Index)
				}
			}
		}
	}

	if exit < levelCond {
		return
	}
	if ef.closureCovers(site) {
		return
	}
	name := ef.fn.Name
	switch site.kind {
	case resPin:
		ef.pass.Reportf(site.pos, "page %q pinned by Pager.%s is not released on every path through %s (early return without Unpin?)",
			site.obj.Name(), site.method, name)
	case resTxn:
		ef.pass.Reportf(site.pos, "transaction %q from DB.%s is neither committed nor rolled back on some path through %s",
			site.obj.Name(), site.method, name)
	case resSnap:
		ef.pass.Reportf(site.pos, "snapshot %q from DB.AcquireSnap is not released on every path through %s (early return without ReleaseSnap pins the version-GC horizon)",
			site.obj.Name(), name)
	case resStream:
		ef.pass.Reportf(site.pos, "stream reader %q from Log.NewStreamReader is not closed on every path through %s (an abandoned reader leaks its segment handle)",
			site.obj.Name(), name)
	case resLock:
		ef.pass.Reportf(site.pos, "%s locked here is not unlocked on every path through %s (early return while holding it?)",
			site.lock.Short(), name)
	}
}

// closureCovers reports whether a deferred closure somewhere in the
// body releases this site's resource; closures read their captured
// variable at exit time, so registration order does not matter.
func (ef *errpathFunc) closureCovers(site *resSite) bool {
	switch site.kind {
	case resPin:
		return ef.closureUnpin[site.obj]
	case resTxn:
		return ef.closureTxDone[site.obj]
	case resSnap:
		return ef.closureSnap[site.obj]
	case resStream:
		return ef.closureStream[site.obj]
	case resLock:
		return ef.closureUnlock[site.lock]&site.mode != 0
	}
	return false
}

// xfer applies one CFG node to a site's obligation state.
func (ef *errpathFunc) xfer(site *resSite, n ast.Node, st resLevel) resLevel {
	if n == site.node {
		return site.initLevel() // (re-)acquisition starts a fresh obligation
	}
	switch n := n.(type) {
	case *ast.DeferStmt:
		// `defer pg.Unpin(p)` after the acquisition captures this
		// site's value and discharges every later exit on this path.
		if ef.nodeReleases(site, n) {
			return levelNone
		}
		if site.obj != nil && ef.objEscapesIn(site, n) {
			return levelNone
		}
		return st
	case *ast.GoStmt:
		if site.obj != nil && ef.objEscapesIn(site, n) {
			return levelNone // the goroutine owns it now
		}
		return st
	}

	if site.kind == resLock {
		if ef.nodeReleases(site, n) {
			return levelNone
		}
		return st
	}

	if ef.nodeReleases(site, n) {
		return levelNone
	}
	if reassignsObj(ef.info, n, site.obj, site.node) {
		return levelNone // variable rebound; the old value's story ended elsewhere
	}
	if ef.objEscapesIn(site, n) {
		return levelNone
	}
	if st == levelCond && site.errObj != nil && reassignsObj(ef.info, n, site.errObj, site.node) {
		return levelHeld // err re-armed before being checked
	}
	return st
}

// nodeReleases reports whether node n releases site's resource.
func (ef *errpathFunc) nodeReleases(site *resSite, n ast.Node) bool {
	found := false
	ast.Inspect(n, func(m ast.Node) bool {
		if found {
			return false
		}
		call, ok := m.(*ast.CallExpr)
		if !ok {
			return true
		}
		switch site.kind {
		case resLock:
			if op := ef.resolver.lockOpOf(call); op != nil && !op.acquire &&
				op.lock == site.lock && op.mode&site.mode != 0 {
				found = true
			}
		case resPin:
			if unpinArg(ef.info, call) == site.obj {
				found = true
			}
		case resSnap:
			if snapReleaseArg(ef.info, call) == site.obj {
				found = true
			}
		case resTxn:
			if txReleaseRecv(ef.info, call) == site.obj {
				found = true
			}
		case resStream:
			if streamCloseRecv(ef.info, call) == site.obj {
				found = true
			}
		}
		return !found
	})
	return found
}

// objEscapesIn reports whether node n hands site.obj to code that may
// keep or release it: returned, stored, captured by a closure, sent, or
// passed to a callee that does not merely borrow it.
func (ef *errpathFunc) objEscapesIn(site *resSite, n ast.Node) bool {
	escaped := false
	walkStack(n, func(m ast.Node, stack []ast.Node) bool {
		if escaped {
			return false
		}
		id, ok := m.(*ast.Ident)
		if !ok || ef.info.ObjectOf(id) != site.obj || len(stack) == 0 {
			return true
		}
		for _, anc := range stack {
			if _, ok := anc.(*ast.FuncLit); ok {
				escaped = true // closure capture outlives this walk
				return false
			}
		}
		if ef.useEscapes(id, stack) {
			escaped = true
			return false
		}
		return true
	})
	return escaped
}

// useEscapes classifies a single use of the tracked variable, borrowing
// pinbalance's taxonomy but consulting the callee's parameter
// disposition for call arguments.
func (ef *errpathFunc) useEscapes(id *ast.Ident, stack []ast.Node) bool {
	switch p := stack[len(stack)-1].(type) {
	case *ast.SelectorExpr, *ast.IndexExpr, *ast.SliceExpr, *ast.BinaryExpr,
		*ast.IfStmt, *ast.SwitchStmt, *ast.CaseClause, *ast.ParenExpr, *ast.StarExpr:
		return false
	case *ast.AssignStmt:
		for _, l := range p.Lhs {
			if l == id {
				return false // reassignment handled separately
			}
		}
		return true
	case *ast.CallExpr:
		for i, a := range p.Args {
			if a == id {
				return !ef.argBorrows(p, i)
			}
		}
		return false // id is (part of) the call target: receiver use
	case *ast.ReturnStmt, *ast.CompositeLit, *ast.SendStmt, *ast.KeyValueExpr, *ast.UnaryExpr:
		return true
	default:
		return true
	}
}

// argBorrows reports whether argument i of call is only borrowed: every
// resolvable callee merely reads that parameter. Unknown callees are
// assumed to keep what they are given.
func (ef *errpathFunc) argBorrows(call *ast.CallExpr, i int) bool {
	callees := ef.cg.Callees(ef.fn.Pkg, call)
	if len(callees) == 0 {
		return false
	}
	for _, id := range callees {
		b, ok := ef.borrows[id]
		if !ok || i >= len(b) || !b[i] {
			return false
		}
	}
	return true
}

// ---- interprocedural parameter borrow inference ----

// computeParamBorrows decides, for every declared function and each of
// its parameters, whether the function only borrows the parameter:
// reads it without storing, returning, releasing, or forwarding it to a
// non-borrowing callee. Starts optimistic and knocks parameters down to
// a fixpoint (monotone, so it terminates).
func computeParamBorrows(cg *CallGraph) map[FuncID][]bool {
	params := map[FuncID][]types.Object{}
	variadic := map[FuncID]bool{}
	borrows := map[FuncID][]bool{}
	for _, id := range cg.Order {
		fn := cg.Funcs[id]
		if fn.Decl == nil || fn.Decl.Type.Params == nil {
			continue
		}
		var objs []types.Object
		for _, field := range fn.Decl.Type.Params.List {
			if _, ok := field.Type.(*ast.Ellipsis); ok {
				variadic[id] = true
			}
			if len(field.Names) == 0 {
				objs = append(objs, nil) // unnamed: trivially borrowed
				continue
			}
			for _, name := range field.Names {
				objs = append(objs, fn.Pkg.Info.Defs[name])
			}
		}
		params[id] = objs
		b := make([]bool, len(objs))
		for i := range b {
			b[i] = true
		}
		borrows[id] = b
	}
	for round := 0; round < maxSummaryRounds; round++ {
		changed := false
		for _, id := range cg.Order {
			fn := cg.Funcs[id]
			b := borrows[id]
			for i, obj := range params[id] {
				if !b[i] || obj == nil {
					continue
				}
				if variadic[id] && i == len(b)-1 {
					b[i] = false // slices of borrowed things are beyond this analysis
					changed = true
					continue
				}
				if paramMayEscape(cg, fn, obj, borrows) {
					b[i] = false
					changed = true
				}
			}
		}
		if !changed {
			break
		}
	}
	return borrows
}

// paramMayEscape reports whether fn does anything with obj beyond
// reading it, given the current borrow estimates for callees.
func paramMayEscape(cg *CallGraph, fn *FuncNode, obj types.Object, borrows map[FuncID][]bool) bool {
	info := fn.Pkg.Info
	escapes := false
	walkStack(fn.Body, func(n ast.Node, stack []ast.Node) bool {
		if escapes {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok || info.ObjectOf(id) != obj || len(stack) == 0 {
			return true
		}
		for _, anc := range stack {
			if _, ok := anc.(*ast.FuncLit); ok {
				escapes = true
				return false
			}
		}
		switch p := stack[len(stack)-1].(type) {
		case *ast.SelectorExpr, *ast.IndexExpr, *ast.SliceExpr, *ast.BinaryExpr,
			*ast.IfStmt, *ast.SwitchStmt, *ast.CaseClause, *ast.ParenExpr, *ast.StarExpr:
			return true
		case *ast.AssignStmt:
			for _, l := range p.Lhs {
				if l == id {
					return true
				}
			}
			escapes = true
		case *ast.CallExpr:
			idx := -1
			for i, a := range p.Args {
				if a == id {
					idx = i
				}
			}
			if idx < 0 {
				return true // receiver position: method call on the param
			}
			// Releasing a resource is not borrowing it.
			if unpinArg(info, p) != nil {
				escapes = true
				return false
			}
			callees := cg.Callees(fn.Pkg, p)
			if len(callees) == 0 {
				escapes = true
				return false
			}
			for _, cid := range callees {
				cb, ok := borrows[cid]
				if !ok || idx >= len(cb) || !cb[idx] {
					escapes = true
					return false
				}
			}
		default:
			escapes = true
		}
		return !escapes
	})
	return escapes
}

// ---- shared recognizers ----

// pagerAcquireMethod returns "Get"/"Allocate" for pin-returning Pager
// calls, else "".
func pagerAcquireMethod(info *types.Info, call *ast.CallExpr) string {
	if methodCallOn(info, call, "Pager", "Get") != nil {
		return "Get"
	}
	if methodCallOn(info, call, "Pager", "Allocate") != nil {
		return "Allocate"
	}
	return ""
}

// unpinArg returns the object passed to Pager.Unpin, or nil.
func unpinArg(info *types.Info, call *ast.CallExpr) types.Object {
	if methodCallOn(info, call, "Pager", "Unpin") == nil || len(call.Args) != 1 {
		return nil
	}
	id, ok := ast.Unparen(call.Args[0]).(*ast.Ident)
	if !ok {
		return nil
	}
	return info.ObjectOf(id)
}

// snapReleaseArg returns the object passed to DB.ReleaseSnap, or nil.
func snapReleaseArg(info *types.Info, call *ast.CallExpr) types.Object {
	if methodCallOn(info, call, "DB", "ReleaseSnap") == nil || len(call.Args) != 1 {
		return nil
	}
	id, ok := ast.Unparen(call.Args[0]).(*ast.Ident)
	if !ok {
		return nil
	}
	return info.ObjectOf(id)
}

// txReleaseRecv returns the receiver object of a Commit*/Rollback call
// on a transaction value, or nil.
func txReleaseRecv(info *types.Info, call *ast.CallExpr) types.Object {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	name := sel.Sel.Name
	if !strings.HasPrefix(name, "Commit") && name != "Rollback" {
		return nil
	}
	id, ok := ast.Unparen(sel.X).(*ast.Ident)
	if !ok {
		return nil
	}
	recv := info.ObjectOf(id)
	if recv == nil || namedOf(recv.Type()) == nil || namedOf(recv.Type()).Obj().Name() != "Tx" {
		return nil
	}
	return recv
}

// streamCloseRecv returns the receiver object of a Close or Stop call
// on a StreamReader value, or nil. Stop counts as a release: a stopped
// reader's next Next returns ErrStreamStopped and the replication
// serve loop closes it on the way out, but the fixture contract is
// simpler — either call ends the reader's claim on its segment handle.
func streamCloseRecv(info *types.Info, call *ast.CallExpr) types.Object {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	if name := sel.Sel.Name; name != "Close" && name != "Stop" {
		return nil
	}
	id, ok := ast.Unparen(sel.X).(*ast.Ident)
	if !ok {
		return nil
	}
	recv := info.ObjectOf(id)
	if recv == nil || namedOf(recv.Type()) == nil || namedOf(recv.Type()).Obj().Name() != "StreamReader" {
		return nil
	}
	return recv
}

// reassignsObj reports whether n assigns to obj (and n is not the
// acquiring statement itself).
func reassignsObj(info *types.Info, n ast.Node, obj types.Object, acquireNode ast.Node) bool {
	if n == acquireNode || obj == nil {
		return false
	}
	found := false
	ast.Inspect(n, func(m ast.Node) bool {
		if found {
			return false
		}
		if _, ok := m.(*ast.FuncLit); ok {
			return false
		}
		as, ok := m.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for _, l := range as.Lhs {
			if id, ok := l.(*ast.Ident); ok && info.ObjectOf(id) == obj {
				found = true
			}
		}
		return !found
	})
	return found
}

// gateEdge refines a conditional obligation across a branch on the
// acquisition's error variable: the error arm carries nothing, the
// success arm a full obligation.
func gateEdge(info *types.Info, site *resSite, st resLevel, e *Edge) resLevel {
	if st != levelCond || site.errObj == nil || e.Cond == nil {
		return st
	}
	bin, ok := ast.Unparen(e.Cond).(*ast.BinaryExpr)
	if !ok {
		return st
	}
	var errSide ast.Expr
	if isNilIdent(info, bin.Y) {
		errSide = bin.X
	} else if isNilIdent(info, bin.X) {
		errSide = bin.Y
	} else {
		return st
	}
	id, ok := ast.Unparen(errSide).(*ast.Ident)
	if !ok || info.ObjectOf(id) != site.errObj {
		return st
	}
	var errNonNil bool
	switch bin.Op {
	case token.NEQ:
		errNonNil = !e.Negate
	case token.EQL:
		errNonNil = e.Negate
	default:
		return st
	}
	if errNonNil {
		return levelNone
	}
	return levelHeld
}

func isNilIdent(info *types.Info, e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return false
	}
	_, isNil := info.ObjectOf(id).(*types.Nil)
	return isNil
}

// methodName returns a call's selector method name, or "".
func methodName(call *ast.CallExpr) string {
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		return sel.Sel.Name
	}
	return ""
}

// funcBaseName is the bare declared name ("insertLocked").
func funcBaseName(fn *FuncNode) string {
	if fn.Decl != nil {
		return fn.Decl.Name.Name
	}
	return ""
}
