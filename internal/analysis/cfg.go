package analysis

import (
	"go/ast"
	"go/types"
)

// This file builds per-function control-flow graphs over the stdlib
// AST. Blocks hold statements (and branch conditions) in execution
// order; edges carry the branch condition that selects them, which is
// what lets errpath distinguish the `err != nil` arm of an acquisition
// from the success arm. Defer statements stay in the block where they
// are *registered*: an analysis that cares about their at-exit effect
// (errpath, the lock summaries) interprets a reached DeferStmt as
// scheduling work for every subsequent exit on that path, which models
// conditional defers correctly per path.

// Block is one basic block: straight-line code with branching only at
// the end.
type Block struct {
	Index int
	// Nodes are the block's statements and branch-condition expressions
	// in execution order.
	Nodes []ast.Node
	Succs []*Edge
	// Live is reachability from the entry block.
	Live bool
	// What names the block's role for tests and debugging
	// ("if.then", "for.head", ...).
	What string
}

// Edge is one control-flow transfer.
type Edge struct {
	From, To *Block
	// Cond, when non-nil, is the branch condition: the edge is taken
	// when Cond evaluates to !Negate.
	Cond   ast.Expr
	Negate bool
	// Panic marks an edge to the exit block that models an explicit
	// panic/os.Exit rather than a return.
	Panic bool
}

// CFG is one function body's control-flow graph with a single synthetic
// exit block.
type CFG struct {
	Entry, Exit *Block
	Blocks      []*Block
}

// NewCFG builds the control-flow graph of one function body. info may
// be nil (panic detection then falls back to names).
func NewCFG(body *ast.BlockStmt, info *types.Info) *CFG {
	b := &cfgBuilder{
		cfg:     &CFG{},
		info:    info,
		labeled: map[string]*Block{},
	}
	b.cfg.Entry = b.newBlock("entry")
	b.cfg.Exit = b.newBlock("exit")
	b.cur = b.cfg.Entry
	b.stmt(body)
	if b.cur != nil {
		b.edge(b.cur, b.cfg.Exit, nil, false, false)
	}
	b.flushGotos()
	markLive(b.cfg)
	return b.cfg
}

// markLive flags every block reachable from the entry.
func markLive(g *CFG) {
	var visit func(*Block)
	visit = func(blk *Block) {
		if blk.Live {
			return
		}
		blk.Live = true
		for _, e := range blk.Succs {
			visit(e.To)
		}
	}
	visit(g.Entry)
}

type cfgBuilder struct {
	cfg  *CFG
	info *types.Info

	// cur is the block under construction; nil after a terminating
	// statement (return, break, panic) until new code starts.
	cur *Block

	targets *branchTargets
	labeled map[string]*Block
	// pendingLabel is set between a LabeledStmt and the loop/switch it
	// labels, so break/continue with that label resolve.
	pendingLabel string
	// fallTarget is the next case body during switch construction.
	fallTarget *Block
	gotos      []pendingGoto
}

// branchTargets is the lexical stack of break/continue destinations.
type branchTargets struct {
	tail       *branchTargets
	label      string
	brk, cont  *Block
	isLoopLike bool
}

type pendingGoto struct {
	from  *Block
	label string
}

func (b *cfgBuilder) newBlock(what string) *Block {
	blk := &Block{Index: len(b.cfg.Blocks), What: what}
	b.cfg.Blocks = append(b.cfg.Blocks, blk)
	return blk
}

func (b *cfgBuilder) edge(from, to *Block, cond ast.Expr, negate, panics bool) {
	if from == nil {
		return
	}
	from.Succs = append(from.Succs, &Edge{From: from, To: to, Cond: cond, Negate: negate, Panic: panics})
}

// add appends a node to the current block, opening an unreachable block
// if control cannot get here.
func (b *cfgBuilder) add(n ast.Node) {
	if b.cur == nil {
		b.cur = b.newBlock("unreachable")
	}
	b.cur.Nodes = append(b.cur.Nodes, n)
}

// takeLabel consumes the pending label for the construct that owns it.
func (b *cfgBuilder) takeLabel() string {
	l := b.pendingLabel
	b.pendingLabel = ""
	return l
}

func (b *cfgBuilder) push(label string, brk, cont *Block, loop bool) {
	b.targets = &branchTargets{tail: b.targets, label: label, brk: brk, cont: cont, isLoopLike: loop}
}

func (b *cfgBuilder) pop() { b.targets = b.targets.tail }

// findBreak resolves the destination of `break [label]`.
func (b *cfgBuilder) findBreak(label string) *Block {
	for t := b.targets; t != nil; t = t.tail {
		if t.brk == nil {
			continue
		}
		if label == "" || t.label == label {
			return t.brk
		}
	}
	return nil
}

// findContinue resolves the destination of `continue [label]`.
func (b *cfgBuilder) findContinue(label string) *Block {
	for t := b.targets; t != nil; t = t.tail {
		if t.cont == nil || !t.isLoopLike {
			continue
		}
		if label == "" || t.label == label {
			return t.cont
		}
	}
	return nil
}

func (b *cfgBuilder) flushGotos() {
	for _, g := range b.gotos {
		if dst, ok := b.labeled[g.label]; ok {
			b.edge(g.from, dst, nil, false, false)
		}
	}
	b.gotos = nil
}

func (b *cfgBuilder) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case nil:
	case *ast.BlockStmt:
		for _, t := range s.List {
			b.stmt(t)
		}
	case *ast.IfStmt:
		if s.Init != nil {
			b.add(s.Init)
		}
		b.add(s.Cond)
		head := b.cur
		then := b.newBlock("if.then")
		b.edge(head, then, s.Cond, false, false)
		b.cur = then
		b.stmt(s.Body)
		thenEnd := b.cur
		after := b.newBlock("if.after")
		if s.Else != nil {
			els := b.newBlock("if.else")
			b.edge(head, els, s.Cond, true, false)
			b.cur = els
			b.stmt(s.Else)
			if b.cur != nil {
				b.edge(b.cur, after, nil, false, false)
			}
		} else {
			b.edge(head, after, s.Cond, true, false)
		}
		if thenEnd != nil {
			b.edge(thenEnd, after, nil, false, false)
		}
		b.cur = after
	case *ast.ForStmt:
		label := b.takeLabel()
		if s.Init != nil {
			b.add(s.Init)
		}
		head := b.newBlock("for.head")
		b.edge(b.cur, head, nil, false, false)
		after := b.newBlock("for.after")
		body := b.newBlock("for.body")
		var post *Block
		cont := head
		if s.Post != nil {
			post = b.newBlock("for.post")
			cont = post
		}
		if s.Cond != nil {
			head.Nodes = append(head.Nodes, s.Cond)
			b.edge(head, body, s.Cond, false, false)
			b.edge(head, after, s.Cond, true, false)
		} else {
			b.edge(head, body, nil, false, false)
		}
		b.push(label, after, cont, true)
		b.cur = body
		b.stmt(s.Body)
		b.pop()
		if b.cur != nil {
			b.edge(b.cur, cont, nil, false, false)
		}
		if post != nil {
			post.Nodes = append(post.Nodes, s.Post)
			b.edge(post, head, nil, false, false)
		}
		b.cur = after
	case *ast.RangeStmt:
		label := b.takeLabel()
		head := b.newBlock("range.head")
		head.Nodes = append(head.Nodes, s)
		b.edge(b.cur, head, nil, false, false)
		body := b.newBlock("range.body")
		after := b.newBlock("range.after")
		b.edge(head, body, nil, false, false)
		b.edge(head, after, nil, false, false)
		b.push(label, after, head, true)
		b.cur = body
		b.stmt(s.Body)
		b.pop()
		if b.cur != nil {
			b.edge(b.cur, head, nil, false, false)
		}
		b.cur = after
	case *ast.SwitchStmt:
		label := b.takeLabel()
		if s.Init != nil {
			b.add(s.Init)
		}
		if s.Tag != nil {
			b.add(s.Tag)
		}
		b.switchClauses(label, s.Body, true)
	case *ast.TypeSwitchStmt:
		label := b.takeLabel()
		if s.Init != nil {
			b.add(s.Init)
		}
		b.add(s.Assign)
		b.switchClauses(label, s.Body, false)
	case *ast.SelectStmt:
		label := b.takeLabel()
		head := b.cur
		if head == nil {
			head = b.newBlock("unreachable")
			b.cur = head
		}
		after := b.newBlock("select.after")
		b.push(label, after, nil, false)
		for _, cl := range s.Body.List {
			comm := cl.(*ast.CommClause)
			blk := b.newBlock("select.comm")
			b.edge(head, blk, nil, false, false)
			b.cur = blk
			if comm.Comm != nil {
				b.add(comm.Comm)
			}
			for _, t := range comm.Body {
				b.stmt(t)
			}
			if b.cur != nil {
				b.edge(b.cur, after, nil, false, false)
			}
		}
		b.pop()
		b.cur = after
	case *ast.LabeledStmt:
		start := b.newBlock("label." + s.Label.Name)
		b.edge(b.cur, start, nil, false, false)
		b.labeled[s.Label.Name] = start
		b.cur = start
		b.pendingLabel = s.Label.Name
		b.stmt(s.Stmt)
		b.pendingLabel = ""
	case *ast.BranchStmt:
		b.add(s)
		label := ""
		if s.Label != nil {
			label = s.Label.Name
		}
		switch s.Tok.String() {
		case "break":
			if dst := b.findBreak(label); dst != nil {
				b.edge(b.cur, dst, nil, false, false)
			}
		case "continue":
			if dst := b.findContinue(label); dst != nil {
				b.edge(b.cur, dst, nil, false, false)
			}
		case "goto":
			b.gotos = append(b.gotos, pendingGoto{from: b.cur, label: label})
		case "fallthrough":
			if b.fallTarget != nil {
				b.edge(b.cur, b.fallTarget, nil, false, false)
			}
		}
		b.cur = nil
	case *ast.ReturnStmt:
		b.add(s)
		b.edge(b.cur, b.cfg.Exit, nil, false, false)
		b.cur = nil
	case *ast.ExprStmt:
		b.add(s)
		if call, ok := s.X.(*ast.CallExpr); ok && b.noReturn(call) {
			b.edge(b.cur, b.cfg.Exit, nil, false, true)
			b.cur = nil
		}
	default:
		// DeclStmt, AssignStmt, IncDecStmt, SendStmt, DeferStmt, GoStmt,
		// EmptyStmt: straight-line nodes.
		b.add(s)
	}
}

// switchClauses builds the case blocks of a switch or type switch.
// fallthroughOK enables the fallthrough edge (expression switches only).
func (b *cfgBuilder) switchClauses(label string, body *ast.BlockStmt, fallthroughOK bool) {
	head := b.cur
	if head == nil {
		head = b.newBlock("unreachable")
		b.cur = head
	}
	after := b.newBlock("switch.after")
	var clauses []*ast.CaseClause
	for _, cl := range body.List {
		clauses = append(clauses, cl.(*ast.CaseClause))
	}
	blocks := make([]*Block, len(clauses))
	hasDefault := false
	for i, cl := range clauses {
		blocks[i] = b.newBlock("switch.case")
		b.edge(head, blocks[i], nil, false, false)
		if cl.List == nil {
			hasDefault = true
		}
	}
	if !hasDefault {
		b.edge(head, after, nil, false, false)
	}
	b.push(label, after, nil, false)
	prevFall := b.fallTarget
	for i, cl := range clauses {
		if fallthroughOK && i+1 < len(blocks) {
			b.fallTarget = blocks[i+1]
		} else {
			b.fallTarget = nil
		}
		b.cur = blocks[i]
		for _, e := range cl.List {
			b.add(e)
		}
		for _, t := range cl.Body {
			b.stmt(t)
		}
		if b.cur != nil {
			b.edge(b.cur, after, nil, false, false)
		}
	}
	b.fallTarget = prevFall
	b.pop()
	b.cur = after
}

// noReturn reports whether the call never returns: the panic builtin,
// os.Exit, log.Fatal*, or runtime.Goexit.
func (b *cfgBuilder) noReturn(call *ast.CallExpr) bool {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		if fun.Name != "panic" {
			return false
		}
		if b.info != nil {
			_, isBuiltin := b.info.Uses[fun].(*types.Builtin)
			return isBuiltin
		}
		return true
	case *ast.SelectorExpr:
		id, ok := fun.X.(*ast.Ident)
		if !ok {
			return false
		}
		pkgPath := id.Name
		if b.info != nil {
			pn, ok := b.info.Uses[id].(*types.PkgName)
			if !ok {
				return false
			}
			pkgPath = pn.Imported().Path()
		}
		name := fun.Sel.Name
		switch pkgPath {
		case "os":
			return name == "Exit"
		case "log":
			return name == "Fatal" || name == "Fatalf" || name == "Fatalln"
		case "runtime":
			return name == "Goexit"
		}
	}
	return false
}
