package analysis_test

import (
	"testing"

	"lexequal/internal/analysis"
	"lexequal/internal/analysis/analysistest"
)

// Each golden test runs one analyzer over its fixture package and
// checks the findings against the fixture's // want annotations in both
// directions: a missed expectation and an unexpected finding both fail.

func TestVFSOnly(t *testing.T) {
	analysistest.Run(t, analysistest.Testdata("vfsonly"), analysis.VFSOnly)
}

func TestWALOnly(t *testing.T) {
	analysistest.Run(t, analysistest.Testdata("walonly"), analysis.WALOnly)
}

func TestCorruptErr(t *testing.T) {
	analysistest.Run(t, analysistest.Testdata("corrupterr"), analysis.CorruptErr)
}

func TestNoPanic(t *testing.T) {
	analysistest.Run(t, analysistest.Testdata("nopanic"), analysis.NoPanic)
}

func TestLockCheck(t *testing.T) {
	analysistest.Run(t, analysistest.Testdata("lockcheck"), analysis.LockCheck)
}

// The errpath fixtures pair a seeded-bug file with a clean twin: a pin
// leaked on an early error return and a latch left held in one switch
// arm, next to the deferred/escaping/err-gated shapes that must stay
// silent.
func TestErrPath(t *testing.T) {
	analysistest.Run(t, analysistest.Testdata("errpath"), analysis.ErrPath)
}

// The lockorder fixtures seed a two-lock acquisition cycle, a tier
// inversion against the sanctioned order, and a cross-call RLock
// upgrade, with a clean twin that nests locks in sanctioned order.
func TestLockOrder(t *testing.T) {
	analysistest.Run(t, analysistest.Testdata("lockorder"), analysis.LockOrder)
}

// TestSuiteNames pins the analyzer roster: //lint:ignore annotations
// and DESIGN.md refer to these names, so renames must be deliberate.
func TestSuiteNames(t *testing.T) {
	want := []string{"vfsonly", "walonly", "corrupterr", "nopanic", "lockcheck", "errpath", "lockorder"}
	all := analysis.All()
	if len(all) != len(want) {
		t.Fatalf("All() returned %d analyzers, want %d", len(all), len(want))
	}
	for i, a := range all {
		if a.Name != want[i] {
			t.Errorf("All()[%d].Name = %q, want %q", i, a.Name, want[i])
		}
		if a.Doc == "" {
			t.Errorf("analyzer %q has no Doc", a.Name)
		}
		if (a.Run == nil) == (a.RunProgram == nil) {
			t.Errorf("analyzer %q must set exactly one of Run and RunProgram", a.Name)
		}
	}
}
