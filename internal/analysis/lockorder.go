package analysis

import (
	"fmt"
	"go/token"
	"sort"
	"strings"
)

// LockOrder is the interprocedural lock-ordering analyzer. From the
// per-function lock-set summaries it derives the global acquisition
// graph — an edge A → B for every place some path acquires B while A
// may be held, including acquisitions buried in callees — and reports:
//
//   - cycles in the graph (potential deadlocks),
//   - acquisitions that violate the engine's sanctioned tier order
//     repl → db → heap/btree → pager → wal,
//   - read-to-write upgrades of the same RWMutex, both straight-line
//     and across calls (Seek holds latch.RLock, callee takes Lock).
var LockOrder = &Analyzer{
	Name: "lockorder",
	Doc:  "detect lock-order cycles, tier inversions, and cross-call RLock upgrades",
	RunProgram: func(pass *ProgramPass) error {
		g := BuildLockOrder(pass.Prog)
		for _, d := range g.problems(pass.Prog) {
			pass.Reportf(d.pos, "%s", d.msg)
		}
		return nil
	},
}

// Lock tiers of the sanctioned acquisition order. Matching is by the
// owning type's bare name so golden fixtures can model the engine's
// hierarchy with local types. Lower rank = outer lock.
var lockTiers = map[string]struct {
	rank int
	tier string
}{
	// The replication endpoints sit above the whole engine: a Primary
	// or Follower mutex guards connection bookkeeping and may be held
	// while calling down into db/wal, never the other way around — a
	// storage path that blocked on a replication lock would let one
	// slow follower stall local commits.
	"Primary":  {5, "repl"},
	"Follower": {5, "repl"},
	"DB":       {10, "db"},
	"HeapFile": {20, "heap"},
	"BTree":    {20, "btree"},
	"Pager":    {30, "pager"},
	"Log":      {40, "wal"},
}

// lockFieldTiers refines specific fields of a tiered type: the MVCC
// version store's locks live on DB but occupy their own slots in the
// sanctioned order — the claim lock (wmu) is taken before the storage
// latches it arbitrates, and the version registry (tmu) nests inside
// them, outside only the pager and WAL tiers. Field matches take
// precedence over the owner-type match.
var lockFieldTiers = map[string]struct {
	rank int
	tier string
}{
	"DB.wmu": {15, "claim"},
	"DB.tmu": {25, "version"},
}

const sanctionedOrder = "repl → db → claim → heap/btree → version → pager → wal"

// lockTier resolves a lock to its policy tier; ok is false for locks
// outside the sanctioned hierarchy.
func lockTier(l LockID) (rank int, tier string, ok bool) {
	owner := l.Owner
	if i := strings.LastIndexByte(owner, '.'); i >= 0 {
		owner = owner[i+1:]
	}
	if t, ok := lockFieldTiers[owner+"."+l.Field]; ok {
		return t.rank, t.tier, true
	}
	t, ok := lockTiers[owner]
	return t.rank, t.tier, ok
}

// LockOrderEdge is one witnessed acquisition-order edge: To was
// acquired (possibly inside Via) while From was held.
type LockOrderEdge struct {
	From, To LockID
	FromMode modeBits
	ToMode   modeBits
	Fn       string // function containing the witness site
	Via      string // callee the acquisition was inherited from, "" if direct
	Pos      token.Pos
}

// LockOrderGraph is the program's acquisition-order graph plus the
// same-lock hazards found while building it.
type LockOrderGraph struct {
	Edges   []LockOrderEdge // cross-lock edges, deduplicated, stable order
	hazards []diagRecord    // same-lock upgrade/recursion findings
}

type diagRecord struct {
	pos token.Pos
	msg string
}

// BuildLockOrder computes lock summaries for the program and assembles
// the global acquisition-order graph. The lexequallint -graph mode
// dumps it; the lockorder analyzer reports its problems.
func BuildLockOrder(prog *Program) *LockOrderGraph {
	ls := computeLockSummaries(prog)
	g := &LockOrderGraph{}
	type edgeKey struct {
		from, to LockID
	}
	edges := map[edgeKey]*LockOrderEdge{}
	addEdge := func(e LockOrderEdge) {
		k := edgeKey{e.From, e.To}
		if prev, ok := edges[k]; ok {
			prev.FromMode |= e.FromMode
			prev.ToMode |= e.ToMode
			return
		}
		e2 := e
		edges[k] = &e2
	}
	seenHazard := map[string]bool{}
	hazard := func(pos token.Pos, format string, args ...any) {
		msg := fmt.Sprintf(format, args...)
		key := fmt.Sprintf("%d:%s", pos, msg)
		if seenHazard[key] {
			return
		}
		seenHazard[key] = true
		g.hazards = append(g.hazards, diagRecord{pos: pos, msg: msg})
	}

	for _, id := range ls.cg.Order {
		s := ls.byID[id]
		// Ordering constraints belong to the engine layers that manage
		// the locks. A package-main driver making sequential API calls
		// (BEGIN … INSERT … COMMIT) accumulates may-held handoff state
		// that pairs locks the engine never nests, so drivers do not
		// generate edges or hazards; their summaries still feed trans.
		if s.fn.Pkg.Types.Name() == "main" {
			continue
		}
		for _, a := range s.acquires {
			l := a.op.lock
			for h, hm := range a.held {
				if h == l {
					if hm&bitR != 0 && a.op.mode&bitW != 0 {
						hazard(a.op.pos, "read-to-write upgrade: %s.Lock() while a read lock on %s may still be held (self-deadlock under a waiting writer)", l.Short(), l.Short())
					} else if hm&bitW != 0 && a.op.mode&bitW != 0 {
						hazard(a.op.pos, "recursive lock: %s acquired while already write-held (self-deadlock)", l.Short())
					}
					continue
				}
				addEdge(LockOrderEdge{From: h, To: l, FromMode: hm, ToMode: a.op.mode, Fn: s.fn.Name, Pos: a.op.pos})
			}
		}
		for _, c := range s.calls {
			if c.isGo || len(c.held) == 0 {
				continue
			}
			for _, calleeID := range c.callees {
				cs := ls.byID[calleeID]
				if cs == nil {
					continue
				}
				for l, te := range cs.trans {
					for h, hm := range c.held {
						// A lock the callee provably releases before the
						// acquire is not nested around it (the WAL leader
						// drops fmu before syncing under mu).
						hm &= ^te.relBefore[h]
						if hm == 0 {
							continue
						}
						if h == l {
							// Cross-call write-while-write recursion is left to the
							// cycle check: may-join over branches makes a direct
							// report here too noisy. The R→W upgrade is always a
							// self-deadlock under a waiting writer, so report it.
							if hm&bitR != 0 && te.bits&bitW != 0 {
								hazard(c.pos, "read-to-write upgrade across call: %s acquires %s.Lock() while the caller may hold its read lock", cs.fn.Name, l.Short())
							}
							continue
						}
						addEdge(LockOrderEdge{From: h, To: l, FromMode: hm, ToMode: te.bits, Fn: s.fn.Name, Via: cs.fn.Name, Pos: c.pos})
					}
				}
			}
		}
	}

	for _, e := range edges {
		g.Edges = append(g.Edges, *e)
	}
	sort.Slice(g.Edges, func(i, j int) bool {
		a, b := g.Edges[i], g.Edges[j]
		if a.From != b.From {
			return a.From.String() < b.From.String()
		}
		return a.To.String() < b.To.String()
	})
	return g
}

// problems derives the analyzer's diagnostics from the graph: tier
// inversions, acquisition cycles, and the collected same-lock hazards.
func (g *LockOrderGraph) problems(prog *Program) []diagRecord {
	var out []diagRecord
	out = append(out, g.hazards...)

	for _, e := range g.Edges {
		fromRank, fromTier, okFrom := lockTier(e.From)
		toRank, toTier, okTo := lockTier(e.To)
		if !okFrom || !okTo || toRank >= fromRank {
			continue
		}
		via := ""
		if e.Via != "" {
			via = fmt.Sprintf(" via %s", e.Via)
		}
		out = append(out, diagRecord{
			pos: e.Pos,
			msg: fmt.Sprintf("lock-order violation: %s (tier %s) acquired%s while holding %s (tier %s); sanctioned order is %s",
				e.To.Short(), toTier, via, e.From.Short(), fromTier, sanctionedOrder),
		})
	}

	for _, scc := range g.cycles() {
		witness := make([]string, 0, len(scc))
		pos := token.NoPos
		for _, e := range scc {
			if pos == token.NoPos || e.Pos < pos {
				pos = e.Pos
			}
			via := ""
			if e.Via != "" {
				via = " via " + e.Via
			}
			witness = append(witness, fmt.Sprintf("%s → %s in %s%s at %s",
				e.From.Short(), e.To.Short(), e.Fn, via, prog.Fset.Position(e.Pos)))
		}
		names := map[string]bool{}
		for _, e := range scc {
			names[e.From.Short()] = true
			names[e.To.Short()] = true
		}
		locks := make([]string, 0, len(names))
		for n := range names {
			locks = append(locks, n)
		}
		sort.Strings(locks)
		out = append(out, diagRecord{
			pos: pos,
			msg: fmt.Sprintf("lock-order cycle among %s: %s", strings.Join(locks, ", "), strings.Join(witness, "; ")),
		})
	}

	sort.Slice(out, func(i, j int) bool {
		pi, pj := prog.Fset.Position(out[i].pos), prog.Fset.Position(out[j].pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		return out[i].msg < out[j].msg
	})
	return out
}

// cycles finds the strongly connected components of the edge graph with
// more than one lock, returning each component's internal edges.
func (g *LockOrderGraph) cycles() [][]LockOrderEdge {
	succs := map[LockID][]LockID{}
	nodes := map[LockID]bool{}
	for _, e := range g.Edges {
		succs[e.From] = append(succs[e.From], e.To)
		nodes[e.From] = true
		nodes[e.To] = true
	}
	order := make([]LockID, 0, len(nodes))
	for n := range nodes {
		order = append(order, n)
	}
	sort.Slice(order, func(i, j int) bool { return order[i].String() < order[j].String() })

	// Tarjan's algorithm, iterative enough for our graph sizes via
	// recursion with an explicit depth guard.
	index := map[LockID]int{}
	low := map[LockID]int{}
	onStack := map[LockID]bool{}
	var stack []LockID
	next := 0
	var comps [][]LockID
	var strongconnect func(v LockID)
	strongconnect = func(v LockID) {
		index[v] = next
		low[v] = next
		next++
		stack = append(stack, v)
		onStack[v] = true
		for _, w := range succs[v] {
			if _, seen := index[w]; !seen {
				strongconnect(w)
				if low[w] < low[v] {
					low[v] = low[w]
				}
			} else if onStack[w] && index[w] < low[v] {
				low[v] = index[w]
			}
		}
		if low[v] == index[v] {
			var comp []LockID
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				comp = append(comp, w)
				if w == v {
					break
				}
			}
			if len(comp) > 1 {
				comps = append(comps, comp)
			}
		}
	}
	for _, n := range order {
		if _, seen := index[n]; !seen {
			strongconnect(n)
		}
	}

	var out [][]LockOrderEdge
	for _, comp := range comps {
		in := map[LockID]bool{}
		for _, n := range comp {
			in[n] = true
		}
		var edges []LockOrderEdge
		for _, e := range g.Edges {
			if in[e.From] && in[e.To] {
				edges = append(edges, e)
			}
		}
		out = append(out, edges)
	}
	sort.Slice(out, func(i, j int) bool {
		return out[i][0].From.String() < out[j][0].From.String()
	})
	return out
}

// DOT renders the acquisition graph for `lexequallint -graph`.
func (g *LockOrderGraph) DOT(prog *Program) string {
	var b strings.Builder
	b.WriteString("digraph lockorder {\n  rankdir=TB;\n  node [shape=box, fontname=\"monospace\"];\n")
	nodes := map[LockID]bool{}
	for _, e := range g.Edges {
		nodes[e.From] = true
		nodes[e.To] = true
	}
	for _, l := range sortedLockIDs(nodes) {
		label := l.Short()
		attrs := ""
		if _, tier, ok := lockTier(l); ok {
			attrs = fmt.Sprintf(", group=%q", tier)
		}
		fmt.Fprintf(&b, "  %q [label=%q%s];\n", l.String(), label, attrs)
	}
	for _, e := range g.Edges {
		label := fmt.Sprintf("%s @ %s", e.Fn, prog.Fset.Position(e.Pos))
		if e.Via != "" {
			label += " via " + e.Via
		}
		style := ""
		fromRank, _, okFrom := lockTier(e.From)
		toRank, _, okTo := lockTier(e.To)
		if okFrom && okTo && toRank < fromRank {
			style = ", color=red, penwidth=2"
		}
		fmt.Fprintf(&b, "  %q -> %q [label=%q%s];\n", e.From.String(), e.To.String(), label, style)
	}
	b.WriteString("}\n")
	return b.String()
}

func sortedLockIDs(m map[LockID]bool) []LockID {
	out := make([]LockID, 0, len(m))
	for l := range m {
		out = append(out, l)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].String() < out[j].String() })
	return out
}
