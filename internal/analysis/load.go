package analysis

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
)

// listedPackage is the subset of `go list -json` output the loader
// consumes.
type listedPackage struct {
	ImportPath string
	Dir        string
	Name       string
	GoFiles    []string
	Export     string
	DepOnly    bool
	Standard   bool
	ImportMap  map[string]string
	Error      *struct{ Err string }
}

// goList runs `go list -e -json -deps -export` in dir and decodes the
// package stream. The -export flag makes the toolchain compile every
// listed package and report the path of its export data, which is what
// lets us type-check from source offline: dependencies are imported
// from compiled export data instead of being re-checked transitively.
func goList(dir string, patterns ...string) ([]*listedPackage, error) {
	args := append([]string{"list", "-e", "-json", "-deps", "-export"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %v: %v\n%s", patterns, err, stderr.String())
	}
	var pkgs []*listedPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		p := new(listedPackage)
		if err := dec.Decode(p); errors.Is(err, io.EOF) {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list: decode: %w", err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// exportImporter resolves imports from the export-data files reported
// by go list, through the standard library's gc importer.
type exportImporter struct {
	imp       types.ImporterFrom
	importMap map[string]string // vendor/ImportMap indirection
}

func newExportImporter(fset *token.FileSet, exports map[string]string) *exportImporter {
	lookup := func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
	return &exportImporter{
		imp:       importer.ForCompiler(fset, "gc", lookup).(types.ImporterFrom),
		importMap: map[string]string{},
	}
}

func (e *exportImporter) Import(path string) (*types.Package, error) {
	return e.ImportFrom(path, "", 0)
}

func (e *exportImporter) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	if mapped, ok := e.importMap[path]; ok {
		path = mapped
	}
	return e.imp.ImportFrom(path, dir, 0)
}

// Load lists the packages matching patterns (relative to dir), parses
// their sources, and type-checks each one against the export data of
// its dependencies. Test files are not loaded: the invariants guard
// library code paths.
func Load(dir string, patterns ...string) ([]*Package, error) {
	listed, err := goList(dir, patterns...)
	if err != nil {
		return nil, err
	}
	exports := map[string]string{}
	var targets []*listedPackage
	for _, p := range listed {
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if p.DepOnly || p.Standard {
			continue
		}
		if p.Error != nil {
			return nil, fmt.Errorf("go list: %s: %s", p.ImportPath, p.Error.Err)
		}
		if len(p.GoFiles) == 0 {
			continue
		}
		targets = append(targets, p)
	}
	sort.Slice(targets, func(i, j int) bool { return targets[i].ImportPath < targets[j].ImportPath })

	fset := token.NewFileSet()
	imp := newExportImporter(fset, exports)
	var out []*Package
	for _, t := range targets {
		for from, to := range t.ImportMap {
			imp.importMap[from] = to
		}
		files := make([]*ast.File, 0, len(t.GoFiles))
		for _, name := range t.GoFiles {
			f, err := parser.ParseFile(fset, filepath.Join(t.Dir, name), nil, parser.ParseComments)
			if err != nil {
				return nil, err
			}
			files = append(files, f)
		}
		pkg, info, err := TypeCheck(fset, t.ImportPath, files, imp)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", t.ImportPath, err)
		}
		out = append(out, NewPackage(t.ImportPath, t.Dir, fset, files, pkg, info))
	}
	return out, nil
}

// TypeCheck type-checks one package's parsed files with full use/def
// and expression-type information recorded.
func TypeCheck(fset *token.FileSet, path string, files []*ast.File, imp types.Importer) (*types.Package, *types.Info, error) {
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	conf := types.Config{Importer: imp}
	pkg, err := conf.Check(path, fset, files, info)
	if err != nil {
		return nil, nil, err
	}
	return pkg, info, nil
}

// NewImporter returns a types.Importer resolving imports from a map of
// import path -> export-data file (as produced by StdExports).
func NewImporter(fset *token.FileSet, exports map[string]string) types.Importer {
	return newExportImporter(fset, exports)
}

// StdExports lists export data for the given import paths and all of
// their dependencies (used by the analysistest harness, whose fixture
// packages import only the standard library).
func StdExports(dir string, imports []string) (map[string]string, error) {
	if len(imports) == 0 {
		return map[string]string{}, nil
	}
	listed, err := goList(dir, imports...)
	if err != nil {
		return nil, err
	}
	exports := map[string]string{}
	for _, p := range listed {
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
	}
	return exports, nil
}
