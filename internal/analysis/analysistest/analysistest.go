// Package analysistest runs analyzers over golden fixture packages,
// mirroring golang.org/x/tools/go/analysis/analysistest on the standard
// library alone. Fixtures live under testdata/src/<name>/ and annotate
// the lines where findings are expected:
//
//	p, _ := pg.Get(1) // want `never unpinned`
//
// The string is a regular expression matched against the diagnostic
// message. Every expectation must be matched by a finding and every
// finding must be matched by an expectation, so each golden test fails
// both when the analyzer goes blind and when it over-reports.
package analysistest

import (
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"lexequal/internal/analysis"
)

// wantRE extracts the quoted or backquoted expectations from a
// "// want ..." comment.
var wantRE = regexp.MustCompile("`[^`]*`|\"(?:[^\"\\\\]|\\\\.)*\"")

// expectation is one // want annotation.
type expectation struct {
	file string
	line int
	re   *regexp.Regexp
	used bool
}

// Run loads the fixture package in dir (a directory of .go files that
// may import the standard library), applies the analyzer, and compares
// findings against the fixture's // want annotations.
func Run(t *testing.T, dir string, a *analysis.Analyzer) {
	t.Helper()
	diags, expects := run(t, dir, a)

	for _, d := range diags {
		matched := false
		for _, e := range expects {
			if e.used || e.file != filepath.Base(d.Pos.Filename) || e.line != d.Pos.Line {
				continue
			}
			if e.re.MatchString(d.Message) {
				e.used = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected finding at %s:%d: %s", filepath.Base(d.Pos.Filename), d.Pos.Line, d.Message)
		}
	}
	for _, e := range expects {
		if !e.used {
			t.Errorf("%s:%d: expected finding matching %q, got none", e.file, e.line, e.re)
		}
	}
}

func run(t *testing.T, dir string, a *analysis.Analyzer) ([]analysis.Diagnostic, []*expectation) {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("fixture dir: %v", err)
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		t.Fatalf("no fixture files in %s", dir)
	}

	fset := token.NewFileSet()
	var files []*ast.File
	importSet := map[string]bool{}
	var expects []*expectation
	for _, name := range names {
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			t.Fatalf("parse fixture: %v", err)
		}
		files = append(files, f)
		for _, imp := range f.Imports {
			path, _ := strconv.Unquote(imp.Path.Value)
			importSet[path] = true
		}
		expects = append(expects, wants(t, fset, name, f)...)
	}

	var imports []string
	for p := range importSet {
		imports = append(imports, p)
	}
	sort.Strings(imports)
	exports, err := analysis.StdExports(dir, imports)
	if err != nil {
		t.Fatalf("resolving fixture imports: %v", err)
	}

	pkgPath := "fixture/" + filepath.Base(dir)
	tpkg, info, err := analysis.TypeCheck(fset, pkgPath, files, analysis.NewImporter(fset, exports))
	if err != nil {
		t.Fatalf("fixture does not type-check: %v", err)
	}
	pkg := analysis.NewPackage(pkgPath, dir, fset, files, tpkg, info)
	diags, err := analysis.RunAnalyzer(pkg, a)
	if err != nil {
		t.Fatalf("analyzer: %v", err)
	}
	return diags, expects
}

// wants collects the // want expectations of one file.
func wants(t *testing.T, fset *token.FileSet, filename string, f *ast.File) []*expectation {
	t.Helper()
	var out []*expectation
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			text, ok := strings.CutPrefix(c.Text, "// want ")
			if !ok {
				continue
			}
			line := fset.Position(c.Pos()).Line
			matches := wantRE.FindAllString(text, -1)
			if len(matches) == 0 {
				t.Fatalf("%s:%d: malformed want comment %q", filename, line, c.Text)
			}
			for _, m := range matches {
				var pat string
				if m[0] == '`' {
					pat = m[1 : len(m)-1]
				} else {
					var err error
					pat, err = strconv.Unquote(m)
					if err != nil {
						t.Fatalf("%s:%d: bad want pattern %s: %v", filename, line, m, err)
					}
				}
				re, err := regexp.Compile(pat)
				if err != nil {
					t.Fatalf("%s:%d: bad want regexp %q: %v", filename, line, pat, err)
				}
				out = append(out, &expectation{file: filename, line: line, re: re})
			}
		}
	}
	return out
}

// Testdata returns the analyzer fixture root, relative to the calling
// test's package directory.
func Testdata(elem ...string) string {
	return filepath.Join(append([]string{"testdata", "src"}, elem...)...)
}
