// Package analysis is a self-contained static-analysis framework for
// the LexEQUAL engine, mirroring the golang.org/x/tools/go/analysis API
// shape (Analyzer / Pass / Diagnostic) on the standard library alone,
// so the lint suite builds offline with no module dependencies.
//
// The suite enforces the storage-engine invariants introduced with the
// VFS seam and page-checksum work — invariants that hold only by
// convention otherwise and silently regress as the engine grows:
//
//   - vfsonly:    all file I/O in store/db/wal goes through the VFS seam
//   - walonly:    page write-back and image stamping stay in store/wal
//   - corrupterr: corruption errors are matched with errors.Is/As
//   - nopanic:    library code propagates errors, never panics
//   - lockcheck:  mutexes are never copied, read locks never upgraded
//   - errpath:    pins, latches and transactions are released on every
//     control-flow path, including early error returns
//   - lockorder:  the interprocedural lock-acquisition-order graph is
//     acyclic and respects the sanctioned tier order
//     db → heap/btree → pager → wal
//
// The first five are per-package AST checks (Analyzer.Run); errpath and
// lockorder form the dataflow tier (Analyzer.RunProgram): they build
// per-function control-flow graphs (cfg.go) and a whole-program call
// graph (callgraph.go), compute lock-set summaries (summary.go), and
// reason across function and package boundaries.
//
// A finding is suppressed by an adjacent annotation comment:
//
//	//lint:ignore <analyzer> <reason>
//
// on the flagged line or the line directly above it. The reason is
// mandatory: an unexplained suppression is itself a finding. A
// suppression that no longer matches any finding is reported as stale
// (analyzer name "staleignore"), so annotations cannot rot in place.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// Analyzer is one named check. Exactly one of Run and RunProgram is
// set: Run analyzers see one package at a time, RunProgram analyzers
// see the whole loaded program (all packages plus the call graph) and
// can reason across function and package boundaries.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in //lint:ignore
	// annotations.
	Name string
	// Doc is the one-paragraph description shown by -list.
	Doc string
	// Run inspects one package and reports findings through the pass.
	Run func(*Pass) error
	// RunProgram inspects the whole program at once (dataflow tier).
	RunProgram func(*ProgramPass) error
}

// Diagnostic is one finding, positioned in the analyzed source.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s [%s]", d.Pos, d.Message, d.Analyzer)
}

// Package is one loaded, type-checked package ready for analysis.
type Package struct {
	ImportPath string
	Dir        string
	Fset       *token.FileSet
	Files      []*ast.File
	Types      *types.Package
	Info       *types.Info

	// suppressions maps file -> line -> analyzer names ignored there
	// (the annotation suppresses its own line and the one below it).
	suppressions map[string]map[int][]*suppression
}

// suppression is one parsed //lint:ignore annotation. used flips when
// the annotation actually suppresses a finding, which is what the
// stale-suppression audit keys on.
type suppression struct {
	pos       token.Position
	analyzers []string
	reason    string
	used      bool
}

// lintIgnoreRE parses "lint:ignore name1,name2 reason..." comment text.
var lintIgnoreRE = regexp.MustCompile(`^//\s*lint:ignore\s+([A-Za-z0-9_,*]+)\s*(.*)$`)

// NewPackage assembles a Package and indexes its suppression
// annotations. All analyzer entry points go through here, so tests and
// the multichecker agree on suppression semantics.
func NewPackage(importPath, dir string, fset *token.FileSet, files []*ast.File, tpkg *types.Package, info *types.Info) *Package {
	p := &Package{
		ImportPath:   importPath,
		Dir:          dir,
		Fset:         fset,
		Files:        files,
		Types:        tpkg,
		Info:         info,
		suppressions: map[string]map[int][]*suppression{},
	}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := lintIgnoreRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := fset.Position(c.Pos())
				byLine := p.suppressions[pos.Filename]
				if byLine == nil {
					byLine = map[int][]*suppression{}
					p.suppressions[pos.Filename] = byLine
				}
				byLine[pos.Line] = append(byLine[pos.Line], &suppression{
					pos:       pos,
					analyzers: strings.Split(m[1], ","),
					reason:    strings.TrimSpace(m[2]),
				})
			}
		}
	}
	return p
}

// suppressed reports whether an annotation at pos.Line or the line
// above names the analyzer (or "*"). Annotations without a reason do
// not suppress: the justification is part of the contract. A match is
// recorded on the annotation so the stale-suppression audit can tell
// live annotations from rotten ones.
func (p *Package) suppressed(analyzer string, pos token.Position) bool {
	byLine := p.suppressions[pos.Filename]
	if byLine == nil {
		return false
	}
	for _, line := range []int{pos.Line, pos.Line - 1} {
		for _, s := range byLine[line] {
			if s.reason == "" {
				continue
			}
			for _, name := range s.analyzers {
				if name == analyzer || name == "*" {
					s.used = true
					return true
				}
			}
		}
	}
	return false
}

// Pass carries one analyzer's view of one package.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info

	pkg   *Package
	diags *[]Diagnostic
}

// Reportf records a finding at pos unless a //lint:ignore annotation
// covers it.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	if p.pkg.suppressed(p.Analyzer.Name, position) {
		return
	}
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      position,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Filename returns the file name of the file containing pos.
func (p *Pass) Filename(pos token.Pos) string {
	return p.Fset.Position(pos).Filename
}

// RunAnalyzer applies one analyzer to one package. A program-level
// analyzer sees a single-package program (the analysistest path); use
// Run for the full multi-package view.
func RunAnalyzer(pkg *Package, a *Analyzer) ([]Diagnostic, error) {
	if a.RunProgram != nil {
		return RunProgramAnalyzer(NewProgram([]*Package{pkg}), a)
	}
	var diags []Diagnostic
	pass := &Pass{
		Analyzer: a,
		Fset:     pkg.Fset,
		Files:    pkg.Files,
		Pkg:      pkg.Types,
		Info:     pkg.Info,
		pkg:      pkg,
		diags:    &diags,
	}
	if err := a.Run(pass); err != nil {
		return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.ImportPath, err)
	}
	return diags, nil
}

// StaleIgnoreName labels the diagnostics of the stale-suppression
// audit, which is part of the framework rather than a listed analyzer:
// it can only judge an annotation after seeing which findings the real
// analyzers produced.
const StaleIgnoreName = "staleignore"

// auditSuppressions reports every //lint:ignore annotation that did not
// suppress anything during this run. An annotation is only judged when
// all analyzers it names were part of the run (so `-only` subsets never
// produce false staleness); an annotation naming an unknown analyzer
// can never fire and is always stale.
func auditSuppressions(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	ran := map[string]bool{}
	for _, a := range analyzers {
		ran[a.Name] = true
	}
	var out []Diagnostic
	for _, pkg := range pkgs {
		for _, byLine := range pkg.suppressions {
			for _, anns := range byLine {
				for _, s := range anns {
					if s.used {
						continue
					}
					judgeable := true
					for _, name := range s.analyzers {
						if name != "*" && !ran[name] {
							judgeable = false
							out = append(out, Diagnostic{
								Analyzer: StaleIgnoreName,
								Pos:      s.pos,
								Message: fmt.Sprintf("//lint:ignore names unknown analyzer %q; it can never suppress anything",
									name),
							})
							break
						}
					}
					if !judgeable {
						continue
					}
					if s.reason == "" {
						out = append(out, Diagnostic{
							Analyzer: StaleIgnoreName,
							Pos:      s.pos,
							Message:  "//lint:ignore without a reason never suppresses; add a justification or delete it",
						})
						continue
					}
					out = append(out, Diagnostic{
						Analyzer: StaleIgnoreName,
						Pos:      s.pos,
						Message: fmt.Sprintf("stale //lint:ignore %s: no finding here to suppress; delete it",
							strings.Join(s.analyzers, ",")),
					})
				}
			}
		}
	}
	return out
}

// Run applies every analyzer to every package — per-package analyzers
// package by package, program analyzers once over the whole set — then
// audits the //lint:ignore annotations for staleness, and returns the
// combined findings in stable file/line order.
func Run(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var all []Diagnostic
	var prog *Program
	for _, a := range analyzers {
		if a.RunProgram == nil {
			continue
		}
		if prog == nil {
			prog = NewProgram(pkgs)
		}
		diags, err := RunProgramAnalyzer(prog, a)
		if err != nil {
			return nil, err
		}
		all = append(all, diags...)
	}
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			if a.Run == nil {
				continue
			}
			diags, err := RunAnalyzer(pkg, a)
			if err != nil {
				return nil, err
			}
			all = append(all, diags...)
		}
	}
	all = append(all, auditSuppressions(pkgs, analyzers)...)
	sort.Slice(all, func(i, j int) bool {
		a, b := all[i], all[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return all, nil
}

// All returns the full engine-invariant suite in a stable order: the
// per-package AST tier first, then the dataflow tier.
func All() []*Analyzer {
	return []*Analyzer{
		VFSOnly,
		WALOnly,
		CorruptErr,
		NoPanic,
		LockCheck,
		ErrPath,
		LockOrder,
	}
}

// ---- shared analyzer helpers ----

// errorType is the universe "error" interface type.
var errorType = types.Universe.Lookup("error").Type()

// isErrorType reports whether t is exactly the error interface.
func isErrorType(t types.Type) bool {
	return t != nil && types.Identical(t, errorType)
}

// namedOf unwraps pointers and aliases and returns the named type, or
// nil.
func namedOf(t types.Type) *types.Named {
	if t == nil {
		return nil
	}
	t = types.Unalias(t)
	if ptr, ok := t.(*types.Pointer); ok {
		t = types.Unalias(ptr.Elem())
	}
	n, _ := t.(*types.Named)
	return n
}

// methodCallOn returns the receiver expression of call if it is a
// method call named method on a named type called typeName (through a
// pointer or not), else nil.
func methodCallOn(info *types.Info, call *ast.CallExpr, typeName, method string) ast.Expr {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != method {
		return nil
	}
	tv, ok := info.Types[sel.X]
	if !ok {
		return nil
	}
	if n := namedOf(tv.Type); n != nil && n.Obj().Name() == typeName {
		return sel.X
	}
	return nil
}

// pkgFuncName returns the function name if call invokes a
// package-level function of the package with the given import path
// (e.g. os.Open), else "".
func pkgFuncName(info *types.Info, call *ast.CallExpr, pkgPath string) string {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return ""
	}
	pn, ok := info.Uses[id].(*types.PkgName)
	if !ok || pn.Imported().Path() != pkgPath {
		return ""
	}
	return sel.Sel.Name
}

// walkStack traverses root, invoking fn with each node and the stack of
// its ancestors (outermost first, not including n itself). Returning
// false prunes the subtree.
func walkStack(root ast.Node, fn func(n ast.Node, stack []ast.Node) bool) {
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if !fn(n, stack) {
			// still need balanced push/pop: prune by pushing a marker
			// and letting Inspect skip children.
			return false
		}
		stack = append(stack, n)
		return true
	})
}

// enclosingFunc returns the innermost enclosing function declaration in
// the stack, or nil.
func enclosingFunc(stack []ast.Node) *ast.FuncDecl {
	for i := len(stack) - 1; i >= 0; i-- {
		if fd, ok := stack[i].(*ast.FuncDecl); ok {
			return fd
		}
	}
	return nil
}
