package analysis

import "go/ast"

// walExempt are the package names allowed to move page state to disk
// (or drop it) directly: the storage layer itself, whose Pager enforces
// the WAL rule, and the WAL/recovery machinery, which exists to order
// those writes. Everywhere else a direct pager call bypasses the
// transaction discipline — a Flush can push a loser transaction's pages
// out from under recovery, and a stamped page image can assert a
// durability the log never promised.
var walExempt = map[string]bool{"store": true, "wal": true}

// pagerForcedMethods are the Pager methods that write, drop, or sync
// page state wholesale. Engine code outside the exempt packages must go
// through the object-level wrappers (HeapFile/BTree Flush and
// FlushCommitted, db transactions and checkpoints), which keep the WAL
// rule and no-steal policy intact. FlushCommitted and SyncFile are the
// checkpoint's write-back primitives: called raw they can push pages
// whose log records are not yet durable.
var pagerForcedMethods = map[string]bool{
	"Flush":          true,
	"Close":          true,
	"Discard":        true,
	"FlushCommitted": true,
	"SyncFile":       true,
}

// WALOnly forbids direct pager write-back and page-image stamping
// outside the storage and WAL layers.
var WALOnly = &Analyzer{
	Name: "walonly",
	Doc: "report direct Pager.Flush/Close/Discard/FlushCommitted/SyncFile calls and StampPageImage uses outside the store/wal packages; " +
		"page write-back must flow through the WAL rule so recovery stays sound",
	Run: runWALOnly,
}

func runWALOnly(pass *Pass) error {
	if walExempt[pass.Pkg.Name()] {
		return nil
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if sel, ok := call.Fun.(*ast.SelectorExpr); ok && pagerForcedMethods[sel.Sel.Name] {
				if methodCallOn(pass.Info, call, "Pager", sel.Sel.Name) != nil {
					pass.Reportf(call.Pos(), "direct Pager.%s outside the storage/WAL layers bypasses the WAL rule; use the object-level Flush/Close or a db transaction instead", sel.Sel.Name)
				}
			}
			if calleeName(call) == "StampPageImage" {
				pass.Reportf(call.Pos(), "StampPageImage forges a page image's LSN and checksum; only the WAL and recovery layers may stamp pages")
			}
			return true
		})
	}
	return nil
}

// calleeName returns the bare name of the called function or method
// ("F" for both F(...) and x.F(...)), or "".
func calleeName(call *ast.CallExpr) string {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		return fun.Sel.Name
	}
	return ""
}
