package errpath

// The clean twins: every release pattern the engine actually uses must
// stay silent.

// cleanErrGate: the failure arm pins nothing, the success arm releases.
func cleanErrGate(pg *Pager, id uint32) error {
	p, err := pg.Get(id)
	if err != nil {
		return err
	}
	pg.Unpin(p)
	return nil
}

// cleanDefer covers every exit, including the early error return.
func cleanDefer(pg *Pager, id uint32) error {
	p, err := pg.Get(id)
	if err != nil {
		return err
	}
	defer pg.Unpin(p)
	if p.ID == 0 {
		return errBad
	}
	return nil
}

// cleanClosureDefer releases through a deferred closure, which reads
// the captured variable at exit time.
func cleanClosureDefer(pg *Pager, id uint32) error {
	p, err := pg.Get(id)
	if err != nil {
		return err
	}
	defer func() { pg.Unpin(p) }()
	p.Data = append(p.Data, 1)
	return nil
}

// cleanAllArms releases in every switch arm.
func cleanAllArms(pg *Pager, id uint32, kind int) {
	p, err := pg.Get(id)
	if err != nil {
		return
	}
	switch kind {
	case 0:
		pg.Unpin(p)
	default:
		pg.Unpin(p)
	}
}

// cleanHandoff transfers the pin to the caller wholesale.
func cleanHandoff(pg *Pager, id uint32) (*Page, error) {
	return pg.Get(id)
}

// cleanEscape returns the pinned page: the caller owns the Unpin.
func cleanEscape(pg *Pager, id uint32) (*Page, error) {
	p, err := pg.Get(id)
	if err != nil {
		return nil, err
	}
	p.Data = append(p.Data, 1)
	return p, nil
}

// cleanBorrow lends the page to a reader, then releases it itself.
func cleanBorrow(pg *Pager, id uint32) (int, error) {
	p, err := pg.Get(id)
	if err != nil {
		return 0, err
	}
	n := pageLen(p)
	pg.Unpin(p)
	return n, nil
}

// cleanLoop re-pins every iteration and releases on both the early
// continue and the fall-through.
func cleanLoop(pg *Pager, ids []uint32) int {
	total := 0
	for _, id := range ids {
		p, err := pg.Get(id)
		if err != nil {
			continue
		}
		if p.ID == 0 {
			pg.Unpin(p)
			continue
		}
		total += len(p.Data)
		pg.Unpin(p)
	}
	return total
}

// cleanTxn resolves the transaction on both arms.
func cleanTxn(d *DB, fail bool) error {
	tx, err := d.Begin()
	if err != nil {
		return err
	}
	if fail {
		return tx.Rollback()
	}
	return tx.Commit()
}

// cleanTxnDefer rolls back through a defer; Commit marks it done first.
func cleanTxnDefer(d *DB, fail bool) error {
	tx, err := d.Begin()
	if err != nil {
		return err
	}
	defer tx.Rollback()
	if fail {
		return errBad
	}
	return tx.Commit()
}

// cleanConcurrentTxn resolves the MVCC transaction on both arms — the
// conflict path rolls back (the SQL layer's retry contract), the happy
// path commits.
func cleanConcurrentTxn(d *DB, conflict bool) error {
	tx, err := d.BeginTx()
	if err != nil {
		return err
	}
	if conflict {
		return tx.Rollback()
	}
	return tx.Commit()
}

// cleanSnapDefer is the per-statement snapshot shape: acquire, defer
// the release, evaluate under it.
func cleanSnapDefer(d *DB, bad bool) error {
	s := d.AcquireSnap()
	defer d.ReleaseSnap(s)
	if bad {
		return errBad
	}
	_ = s.h
	return nil
}

// cleanSnapBothArms releases on the early exit and the fall-through.
func cleanSnapBothArms(d *DB, bad bool) error {
	s := d.AcquireSnap()
	if bad {
		d.ReleaseSnap(s)
		return errBad
	}
	d.ReleaseSnap(s)
	return nil
}

// cleanSnapHandoff returns the acquired snapshot: the caller owns the
// release, exactly like a pinned page handed off wholesale.
func cleanSnapHandoff(d *DB) *Snap {
	return d.AcquireSnap()
}

// cleanLockDefer is the standard critical-section shape.
func cleanLockDefer(c *counter) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n
}

// swapLocked runs under its caller's lock and briefly drops it; the
// *Locked suffix exempts it from the balance proof, as its contract is
// to exit holding the lock.
func (c *counter) swapLocked(n int) int {
	c.mu.Unlock()
	old := c.n
	c.mu.Lock()
	c.n = n
	return old
}

// lockShared hands a held lock to the caller: no release site in the
// function, so no balance obligation is imposed.
func (c *counter) lockShared() func() {
	c.mu.Lock()
	return func() { c.mu.Unlock() }
}

// cleanRetakeUnderDefer drops and re-acquires the lock mid-function
// under a defer registered at the top — the WAL group-commit leader
// shape. A lock's identity is positionally fixed, so the deferred
// direct unlock covers the re-acquire too.
func cleanRetakeUnderDefer(c *counter, work func() int) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.n > 0 {
		c.mu.Unlock()
		n := work()
		c.mu.Lock()
		c.n = n
	}
	return c.n
}

// cleanPanicPath may exit by panic while holding the pin; panic exits
// are exempt (the process is tearing down).
func cleanPanicPath(pg *Pager, id uint32) {
	p, err := pg.Get(id)
	if err != nil {
		return
	}
	if p.ID == 0 {
		panic("zero page id")
	}
	pg.Unpin(p)
}

// cleanStreamDefer closes the reader on every exit — the replication
// serve loop's shape: open, defer Close, then stream until error.
func cleanStreamDefer(l *Log, limit uint64) error {
	sr, err := l.NewStreamReader(1)
	if err != nil {
		return err
	}
	defer sr.Close()
	if limit == 0 {
		return errBad
	}
	return nil
}

// cleanStreamHandoff hands the reader to a goroutine, which owns it
// from then on (the follower's tailing loop).
func cleanStreamHandoff(l *Log) error {
	sr, err := l.NewStreamReader(1)
	if err != nil {
		return err
	}
	go func() { sr.Close() }()
	return nil
}
