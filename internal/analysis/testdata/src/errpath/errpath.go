// Package errpath is the golden fixture for the errpath analyzer: each
// function here seeds one resource-leak shape the per-path proof must
// catch. The clean twins live in clean.go.
package errpath

import (
	"errors"
	"sync"
)

// Miniature engine surface: the analyzer recognizes these by type and
// method name, exactly as it does the real pager and database.

type Page struct {
	ID   uint32
	Data []byte
}

type Pager struct{ pins int }

func (pg *Pager) Get(id uint32) (*Page, error) { pg.pins++; return &Page{ID: id}, nil }
func (pg *Pager) Allocate() (*Page, error)     { pg.pins++; return &Page{}, nil }
func (pg *Pager) Unpin(p *Page)                { pg.pins-- }

type Tx struct{ done bool }

type Snap struct{ h uint64 }

type DB struct {
	pg    Pager
	snaps int
}

func (d *DB) Begin() (*Tx, error)   { return &Tx{}, nil }
func (d *DB) BeginTx() (*Tx, error) { return &Tx{}, nil }
func (t *Tx) Commit() error         { t.done = true; return nil }
func (t *Tx) Rollback() error       { t.done = true; return nil }

func (d *DB) AcquireSnap() *Snap  { d.snaps++; return &Snap{} }
func (d *DB) ReleaseSnap(s *Snap) { d.snaps-- }

type counter struct {
	mu sync.Mutex
	n  int
}

var errBad = errors.New("bad")

// pageLen only reads its parameter: callers that lend it a page are
// still on the hook for the Unpin (borrow inference).
func pageLen(p *Page) int { return len(p.Data) }

// leakOnError drops the pin when the validation check fails.
func leakOnError(pg *Pager, id uint32) error {
	p, err := pg.Get(id) // want `page "p" pinned by Pager\.Get is not released on every path`
	if err != nil {
		return err
	}
	if p.ID == 0 {
		return errBad // early return without Unpin
	}
	pg.Unpin(p)
	return nil
}

// leakInSwitchArm releases in two arms but forgets the third.
func leakInSwitchArm(pg *Pager, id uint32, kind int) error {
	p, err := pg.Get(id) // want `page "p" pinned by Pager\.Get is not released on every path`
	if err != nil {
		return err
	}
	switch kind {
	case 0:
		pg.Unpin(p)
	case 1:
		p.Data = nil // no Unpin in this arm
	default:
		pg.Unpin(p)
	}
	return nil
}

// leakViaBorrow lends the page to a reader; lending is not a handoff,
// so the early return still owes an Unpin.
func leakViaBorrow(pg *Pager, id uint32) error {
	p, err := pg.Get(id) // want `page "p" pinned by Pager\.Get is not released on every path`
	if err != nil {
		return err
	}
	if pageLen(p) > 0 {
		return errBad
	}
	pg.Unpin(p)
	return nil
}

// leakAllocate forgets the fresh page when the copy fails.
func leakAllocate(pg *Pager, data []byte) (uint32, error) {
	p, err := pg.Allocate() // want `page "p" pinned by Pager\.Allocate is not released on every path`
	if err != nil {
		return 0, err
	}
	if len(data) > cap(p.Data) {
		return 0, errBad
	}
	p.Data = append(p.Data[:0], data...)
	id := p.ID
	pg.Unpin(p)
	return id, nil
}

// leakTxn neither commits nor rolls back on the failure path.
func leakTxn(d *DB, fail bool) error {
	tx, err := d.Begin() // want `transaction "tx" from DB\.Begin is neither committed nor rolled back`
	if err != nil {
		return err
	}
	if fail {
		return errBad
	}
	return tx.Commit()
}

// leakConcurrentTxn abandons the MVCC transaction when the write
// fails: never finished, it stays in the in-flight registry and blocks
// the version-GC horizon for the life of the process.
func leakConcurrentTxn(d *DB, fail bool) error {
	tx, err := d.BeginTx() // want `transaction "tx" from DB\.BeginTx is neither committed nor rolled back`
	if err != nil {
		return err
	}
	if fail {
		return errBad
	}
	return tx.Commit()
}

// leakSnap drops the snapshot on the validation failure path: a
// registered snapshot that is never released pins the GC horizon.
func leakSnap(d *DB, bad bool) error {
	s := d.AcquireSnap() // want `snapshot "s" from DB\.AcquireSnap is not released on every path`
	if bad {
		return errBad
	}
	d.ReleaseSnap(s)
	return nil
}

// leakLock returns while still holding the mutex.
func leakLock(c *counter, bad bool) error {
	c.mu.Lock() // want `counter\.mu locked here is not unlocked on every path`
	if bad {
		return errBad
	}
	c.mu.Unlock()
	return nil
}

// Replication's stream surface: the analyzer recognizes the reader by
// type and method name, exactly as it does the real wal.Log.

type StreamReader struct{ open bool }

type Log struct{ readers int }

func (l *Log) NewStreamReader(from uint64) (*StreamReader, error) {
	l.readers++
	return &StreamReader{open: true}, nil
}

func (sr *StreamReader) Close() { sr.open = false }

// leakStream abandons the reader when validation fails: the reader
// keeps its segment handle (and on a primary, its follower slot) for
// the life of the process.
func leakStream(l *Log, limit uint64) error {
	sr, err := l.NewStreamReader(1) // want `stream reader "sr" from Log\.NewStreamReader is not closed on every path`
	if err != nil {
		return err
	}
	if limit == 0 {
		return errBad
	}
	sr.Close()
	return nil
}

// discards throws pinned pages away entirely.
func discards(pg *Pager) {
	pg.Get(7)        // want `result of Pager\.Get is discarded; the pinned page leaks`
	_, _ = pg.Get(8) // want `pinned page from Pager\.Get is discarded; the pin can never be released`
}
