// Package pinbalance is the golden fixture for the pinbalance analyzer.
// Page and Pager mirror the store types, which the analyzer matches by
// type name so fixtures need not import the engine.
package pinbalance

type Page struct {
	ID   uint32
	Data []byte
}

type Pager struct{}

func (*Pager) Get(id uint32) (*Page, error) { return &Page{ID: id}, nil }
func (*Pager) Allocate() (*Page, error)     { return &Page{}, nil }
func (*Pager) Unpin(p *Page)                {}

func deferredUnpin(pg *Pager) error {
	p, err := pg.Get(1)
	if err != nil {
		return err
	}
	defer pg.Unpin(p)
	p.Data[0] = 1
	return nil
}

func directUnpin(pg *Pager) error {
	p, err := pg.Allocate()
	if err != nil {
		return err
	}
	p.Data[0] = 1
	pg.Unpin(p)
	return nil
}

func handedOff(pg *Pager) (*Page, error) {
	p, err := pg.Get(2)
	if err != nil {
		return nil, err
	}
	return p, nil // ownership transfers to the caller
}

func passedAlong(pg *Pager, sink func(*Page)) error {
	p, err := pg.Get(3)
	if err != nil {
		return err
	}
	sink(p) // the callee is now responsible for the pin
	return nil
}

type cursor struct{ page *Page }

func storedAway(pg *Pager, c *cursor) error {
	var err error
	c.page, err = pg.Get(4) // pin ownership moves into the cursor
	return err
}

func rebound(pg *Pager) *Page {
	p, err := pg.Get(5)
	if err != nil {
		return nil
	}
	q := p // flowing into another binding counts as a hand-off
	return q
}

func leaks(pg *Pager) byte {
	p, err := pg.Get(6) // want `page "p" pinned by Pager\.Get is never unpinned in leaks`
	if err != nil {
		return 0
	}
	return p.Data[0]
}

func discards(pg *Pager) {
	_, _ = pg.Get(7) // want `pinned page from Pager\.Get is discarded; the pin can never be released`
	pg.Allocate()    // want `result of Pager\.Allocate is discarded; the pinned page leaks`
}

func pinnedForLife(pg *Pager) byte {
	//lint:ignore pinbalance the meta page stays pinned for the pager's lifetime
	p, err := pg.Get(8)
	if err != nil {
		return 0
	}
	return p.Data[0]
}
