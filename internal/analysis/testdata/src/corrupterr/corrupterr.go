// Package corrupterr is the golden fixture for the corrupterr analyzer.
package corrupterr

import (
	"errors"
	"io"
)

var ErrCorrupt = errors.New("corrupt data")

type CorruptPageError struct{ Page uint32 }

func (e *CorruptPageError) Error() string { return "corrupt page" }

// Is implements the errors.Is protocol; identity comparison is the
// point here and must not be flagged.
func (e *CorruptPageError) Is(target error) bool { return target == ErrCorrupt }

func compares(err error) bool {
	if err == ErrCorrupt { // want `comparison with ErrCorrupt using == breaks once the error is wrapped; use errors\.Is`
		return true
	}
	return err != io.EOF // want `comparison with io\.EOF using != breaks once the error is wrapped`
}

func asserts(err error) uint32 {
	if pe, ok := err.(*CorruptPageError); ok { // want `type assertion to corrupterr\.CorruptPageError sees only the outermost error; use errors\.As`
		return pe.Page
	}
	return 0
}

func typeSwitches(err error) string {
	switch err.(type) {
	case *CorruptPageError: // want `type switch case on corrupterr\.CorruptPageError sees only the outermost error`
		return "corrupt"
	default:
		return "other"
	}
}

func valueSwitches(err error) string {
	switch err {
	case ErrCorrupt: // want `switch case matches ErrCorrupt by identity and breaks once the error is wrapped; use errors\.Is`
		return "corrupt"
	case nil:
		return "ok"
	}
	return "other"
}

func matchesProperly(err error) (uint32, bool) {
	var pe *CorruptPageError
	if errors.As(err, &pe) {
		return pe.Page, true
	}
	if errors.Is(err, ErrCorrupt) {
		return 0, true
	}
	return 0, err == nil // nil comparisons are fine
}

func suppressedIdentity(err error) bool {
	//lint:ignore corrupterr the decoder returns its own unwrapped sentinel
	return err == ErrCorrupt
}
