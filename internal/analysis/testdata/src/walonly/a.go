// Package db is the golden fixture for the walonly analyzer: the
// package name places it in scope (it is not store or wal), and the
// local Pager type stands in for store.Pager, which the analyzer
// matches by name.
package db

type Pager struct{}

func (pg *Pager) Flush() error          { return nil }
func (pg *Pager) Close() error          { return nil }
func (pg *Pager) Discard() error        { return nil }
func (pg *Pager) FlushCommitted() error { return nil }
func (pg *Pager) SyncFile() error       { return nil }
func (pg *Pager) Get(id uint32)         {}

// Heap models the sanctioned object-level wrapper: flushing through it
// is fine, only the raw pager call is flagged.
type Heap struct{ pg *Pager }

func (h *Heap) Flush() error {
	return h.pg.Flush() // want `direct Pager\.Flush outside the storage/WAL layers`
}

func (h *Heap) FlushCommitted() error {
	return h.pg.FlushCommitted() // want `direct Pager\.FlushCommitted outside the storage/WAL layers`
}

// fuzzyCheckpoint models a checkpointer reaching past the object layer:
// both write-back primitives are flagged; the wrapper call is not.
func fuzzyCheckpoint(pg *Pager, h *Heap) error {
	if err := h.FlushCommitted(); err != nil { // the sanctioned path
		return err
	}
	if err := pg.FlushCommitted(); err != nil { // want `direct Pager\.FlushCommitted outside the storage/WAL layers`
		return err
	}
	return pg.SyncFile() // want `direct Pager\.SyncFile outside the storage/WAL layers`
}

func forcedWriteback(pg *Pager) error {
	if err := pg.Flush(); err != nil { // want `direct Pager\.Flush outside the storage/WAL layers`
		return err
	}
	pg.Get(1)         // reads are fine
	return pg.Close() // want `direct Pager\.Close outside the storage/WAL layers`
}

func dropCache(pg *Pager) error {
	return pg.Discard() // want `direct Pager\.Discard outside the storage/WAL layers`
}

func wrapperFlushOK(h *Heap) error {
	// The object-level wrapper is the sanctioned path.
	return h.Flush()
}

func StampPageImage(id uint32, buf []byte, lsn uint64) {}

func forgesImage(buf []byte) {
	StampPageImage(0, buf, 99) // want `StampPageImage forges a page image`
}

func suppressedShutdown(pg *Pager) error {
	//lint:ignore walonly the repl owns this pager and closes it at exit
	return pg.Close()
}
