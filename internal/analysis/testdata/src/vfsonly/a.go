// Package store is the golden fixture for the vfsonly analyzer: the
// package *name* places it in scope, matching internal/store.
package store

import "os"

func reads(path string) ([]byte, error) {
	f, err := os.Open(path) // want `direct os\.Open bypasses the store\.VFS seam`
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return os.ReadFile(path) // want `direct os\.ReadFile bypasses the store\.VFS seam`
}

func writes(path string, data []byte) error {
	return os.WriteFile(path, data, 0o644) // want `direct os\.WriteFile bypasses the store\.VFS seam`
}

func allowedHelpers(err error) bool {
	// Pure classification helpers and flag constants touch no
	// filesystem state and are not flagged.
	_ = os.O_RDWR
	return os.IsNotExist(err)
}

func suppressedProbe(path string) bool {
	//lint:ignore vfsonly the lock-file probe is advisory and test-only
	_, err := os.Stat(path)
	return err == nil
}
