package store

import "os"

// The seam file itself is the one place per package allowed to call the
// os package directly: this is where a production VFS wraps it.
func open(path string) (*os.File, error) {
	return os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
}
