// Package store is the golden fixture for the nopanic analyzer: the
// package *name* places it in the library-code scope.
package store

import "strings"

type closer struct{}

func (closer) Close() error { return nil }

func panics(n int) int {
	if n < 0 {
		panic("negative") // want `panic in library code path; propagate an error instead`
	}
	return n
}

func dropsError() {
	var c closer
	c.Close() // want `error result of c\.Close is silently dropped; handle it or assign it to _ explicitly`
}

func handlesError() error {
	var c closer
	if err := c.Close(); err != nil {
		return err
	}
	return nil
}

func explicitDiscard() {
	var c closer
	_ = c.Close() // an explicit discard states the intent; allowed
}

func deferredClose() error {
	var c closer
	defer c.Close() // defers are structurally exempt
	return nil
}

func infallibleBuilder() string {
	var b strings.Builder
	b.WriteByte('x') // strings.Builder writes never fail: carved out
	return b.String()
}

func justifiedPanic(ok bool) {
	if !ok {
		//lint:ignore nopanic a pin-protocol violation is a programming error
		panic("invariant violated")
	}
}

func unexplainedSuppression(ok bool) {
	if !ok {
		// An annotation without a reason does not suppress.
		//lint:ignore nopanic
		panic("no reason given") // want `panic in library code path`
	}
}
