// Package lockorder is the golden fixture for the lockorder analyzer:
// a seeded two-lock acquisition cycle, a tier inversion against the
// sanctioned order (direct and through a call), and read-to-write
// upgrades of one RWMutex, straight-line and across a call. The type
// names Pager/HeapFile/Log deliberately mirror the engine's so the
// suffix-matched tier policy applies to them.
package lockorder

import "sync"

type a struct{ mu sync.Mutex }

type b struct{ mu sync.Mutex }

// abba1 and abba2 acquire the same two locks in opposite orders: the
// classic deadlock seed the cycle detector must catch.
func abba1(x *a, y *b) {
	x.mu.Lock()
	y.mu.Lock() // want `lock-order cycle among lockorder\.a\.mu, lockorder\.b\.mu`
	y.mu.Unlock()
	x.mu.Unlock()
}

func abba2(x *a, y *b) {
	y.mu.Lock()
	x.mu.Lock()
	x.mu.Unlock()
	y.mu.Unlock()
}

type Pager struct{ mu sync.Mutex }

type HeapFile struct{ latch sync.RWMutex }

type Log struct{ mu sync.Mutex }

// inverted takes a heap-tier latch while already inside the pager
// tier: the sanctioned order is db → heap/btree → pager → wal.
func inverted(p *Pager, h *HeapFile) {
	p.mu.Lock()
	h.latch.Lock() // want `lock-order violation: lockorder\.HeapFile\.latch \(tier heap\) acquired while holding lockorder\.Pager\.mu \(tier pager\); sanctioned order is repl → db → claim → heap/btree → version → pager → wal`
	h.latch.Unlock()
	p.mu.Unlock()
}

func flushPager(p *Pager) {
	p.mu.Lock()
	p.mu.Unlock()
}

// invertedViaCall violates the order one call deep: the wal tier is
// held while the callee enters the pager tier.
func invertedViaCall(l *Log, p *Pager) {
	l.mu.Lock()
	flushPager(p) // want `lock-order violation: lockorder\.Pager\.mu \(tier pager\) acquired via lockorder\.flushPager while holding lockorder\.Log\.mu \(tier wal\)`
	l.mu.Unlock()
}

// claimUnderLatch takes the MVCC claim lock while already inside a
// storage latch: the claim tier arbitrates row claims *before* the
// winner touches storage, so it must be acquired outside the latches.
// (The edge ends at DB.wmu, whose only fixture successors are
// HeapFile.latch and DB.tmu — neither reaches BTree.latch — so the
// seeded inversion stays acyclic.)
func claimUnderLatch(d *DB, t *BTree) {
	t.latch.Lock()
	d.wmu.Lock() // want `lock-order violation: lockorder\.DB\.wmu \(tier claim\) acquired while holding lockorder\.BTree\.latch \(tier btree\); sanctioned order is repl → db → claim → heap/btree → version → pager → wal`
	d.wmu.Unlock()
	t.latch.Unlock()
}

// versionUnderPager consults the version registry from inside the pager
// tier: visibility decisions happen above the page cache, never below
// it.
func versionUnderPager(d *DB, p *Pager) {
	p.mu.Lock()
	d.tmu.Lock() // want `lock-order violation: lockorder\.DB\.tmu \(tier version\) acquired while holding lockorder\.Pager\.mu \(tier pager\); sanctioned order is repl → db → claim → heap/btree → version → pager → wal`
	d.tmu.Unlock()
	p.mu.Unlock()
}

type index struct{ latch sync.RWMutex }

func (ix *index) grow() {
	ix.latch.Lock()
	ix.latch.Unlock()
}

// lookup upgrades its read lock by calling grow, which takes the write
// lock: self-deadlock as soon as another writer is queued.
func (ix *index) lookup() int {
	ix.latch.RLock()
	ix.grow() // want `read-to-write upgrade across call: lockorder\.\(index\)\.grow acquires lockorder\.index\.latch\.Lock\(\) while the caller may hold its read lock`
	ix.latch.RUnlock()
	return 0
}

// upgrade does the same in a straight line.
func (ix *index) upgrade() {
	ix.latch.RLock()
	ix.latch.Lock() // want `read-to-write upgrade: lockorder\.index\.latch\.Lock\(\) while a read lock on lockorder\.index\.latch may still be held`
	ix.latch.Unlock()
	ix.latch.RUnlock()
}

type Follower struct{ mu sync.Mutex }

// replUnderWal takes a replication-endpoint lock from inside the wal
// tier: the repl tier tops the sanctioned order precisely so a slow
// follower's bookkeeping can never stall a local commit. (Follower has
// no outgoing fixture edges, so the seeded inversion stays acyclic.)
func replUnderWal(l *Log, f *Follower) {
	l.mu.Lock()
	f.mu.Lock() // want `lock-order violation: lockorder\.Follower\.mu \(tier repl\) acquired while holding lockorder\.Log\.mu \(tier wal\); sanctioned order is repl → db → claim → heap/btree → version → pager → wal`
	f.mu.Unlock()
	l.mu.Unlock()
}
