package lockorder

import "sync"

// The clean twin: nesting that follows the sanctioned order
// repl → db → heap/btree → pager → wal produces no findings. It uses the
// db/btree/wal tiers so its edges stay disjoint from the seeded
// violations in lockorder.go.

type DB struct {
	qmu sync.RWMutex
	// The MVCC version store: wmu is the claim lock (tier claim, outside
	// the storage latches), tmu the version registry (tier version,
	// inside them). The field-qualified tier overrides give them their
	// own ranks even though they live on DB.
	wmu sync.Mutex
	tmu sync.RWMutex
}

type BTree struct{ latch sync.RWMutex }

func sanctioned(d *DB, t *BTree, l *Log) {
	d.qmu.Lock()
	t.latch.Lock()
	l.mu.Lock()
	l.mu.Unlock()
	t.latch.Unlock()
	d.qmu.Unlock()
}

// sanctionedMVCC is the version store's write path: query lock shared,
// claim decision under wmu, storage latch for the row patch, version
// registry read for the visibility horizon — every step descends the
// sanctioned order. (It stops short of the wal tier: BTree.latch → Log
// already exists in sanctioned, and adding wmu → Log here would close a
// cycle through the seeded Log → Pager → heap inversions.)
func sanctionedMVCC(d *DB, h *HeapFile) {
	d.qmu.RLock()
	d.wmu.Lock()
	h.latch.Lock()
	d.tmu.RLock()
	d.tmu.RUnlock()
	h.latch.Unlock()
	d.wmu.Unlock()
	d.qmu.RUnlock()
}

// sanctionedViaCall nests the same tiers one call deep.
func appendWAL(l *Log) {
	l.mu.Lock()
	l.mu.Unlock()
}

func sanctionedViaCall(d *DB, l *Log) {
	d.qmu.RLock()
	appendWAL(l)
	d.qmu.RUnlock()
}

// handover releases before re-acquiring: no held-across edge, no
// upgrade, even though both modes of the same latch appear.
func (t *BTree) handover() {
	t.latch.RLock()
	t.latch.RUnlock()
	t.latch.Lock()
	t.latch.Unlock()
}

// leader/leaderLocked mirror the WAL group-commit shape: the caller
// holds the inner-tier latch, and the *Locked helper provably drops it
// before entering the outer db tier, then retakes it. The analyzer must
// see the must-release and not report a latch → qmu inversion.
func leader(d *DB, t *BTree) {
	t.latch.Lock()
	leaderLocked(d, t)
	t.latch.Unlock()
}

func leaderLocked(d *DB, t *BTree) {
	t.latch.Unlock()
	d.qmu.Lock()
	d.qmu.Unlock()
	t.latch.Lock()
}

// lockTree hands its lock to the caller as an unlock closure, the
// session idiom: the caller releases by invoking the returned value.
func lockTree(t *BTree) func() {
	t.latch.RLock()
	return t.latch.RUnlock
}

// closureRelease invokes the returned closure before entering the outer
// db tier: the call through the local variable is the release, so no
// latch → qmu inversion exists.
func closureRelease(d *DB, t *BTree) {
	unlock := lockTree(t)
	unlock()
	d.qmu.Lock()
	d.qmu.Unlock()
}

// session stores the unlock closure in a field across calls, the
// Session.txUnlock idiom; invoking the field releases the latch.
type session struct {
	unlock func()
}

func (s *session) begin(t *BTree) {
	s.unlock = lockTree(t)
}

func (s *session) end(d *DB) {
	s.unlock()
	d.qmu.Lock()
	d.qmu.Unlock()
}

// beginEnd carries the handed-off latch between the calls; end releases
// it through the stored field before taking the outer db-tier lock.
func beginEnd(d *DB, t *BTree, s *session) {
	s.begin(t)
	s.end(d)
}

type Primary struct{ mu sync.Mutex }

// sanctionedRepl descends from the replication endpoint into the db
// tier — the streaming service inspecting follower state before it
// reads the engine — which is the sanctioned direction. (It uses
// Primary, not Follower: Follower carries the seeded wal → repl
// inversion edge in lockorder.go, and an outgoing repl → db edge from
// the same lock would close a cycle through the fixture graph.)
func sanctionedRepl(p *Primary, d *DB) {
	p.mu.Lock()
	d.qmu.RLock()
	d.qmu.RUnlock()
	p.mu.Unlock()
}
