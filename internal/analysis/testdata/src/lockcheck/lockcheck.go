// Package lockcheck is the golden fixture for the lockcheck analyzer.
package lockcheck

import "sync"

type guarded struct {
	mu    sync.Mutex
	count int
}

type registry struct {
	mu sync.RWMutex
	m  map[string]int
}

func byValueParam(g guarded) int { // want `parameter passes a lock by value: the type contains sync\.Mutex; use a pointer`
	return g.count
}

func byValueResult() (g guarded) { // want `result passes a lock by value: the type contains sync\.Mutex`
	return
}

func (g guarded) byValueReceiver() int { // want `receiver passes a lock by value: the type contains sync\.Mutex; use a pointer`
	return g.count
}

func (g *guarded) increment() {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.count++
}

func births() *guarded {
	g := guarded{} // a composite literal is a fresh value, not a copy
	return &g
}

func copies(g *guarded) {
	snapshot := *g // want `assignment copies a lock: the value's type contains sync\.Mutex; use a pointer`
	_ = &snapshot
}

func consume(g guarded) {} // want `parameter passes a lock by value`

func passesByValue(g *guarded) {
	consume(*g) // want `call passes a lock by value: the argument's type contains sync\.Mutex; pass a pointer`
}

func iterates(gs []guarded) int {
	total := 0
	for _, g := range gs { // want `range value copies a lock: its type contains sync\.Mutex; iterate by index or use pointers`
		total += g.count
	}
	return total
}

func (r *registry) lookupThenInsert(key string) int {
	r.mu.RLock()
	v, ok := r.m[key]
	r.mu.RUnlock()
	if ok {
		return v
	}
	r.mu.Lock() // the read lock was released above: not an upgrade
	defer r.mu.Unlock()
	r.m[key] = 1
	return 1
}

func (r *registry) upgrades(key string) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if _, ok := r.m[key]; !ok {
		r.mu.Lock() // want `r\.mu\.Lock\(\) while its read lock is held: an RWMutex cannot be upgraded`
		r.m[key] = 1
		r.mu.Unlock()
	}
}

func suppressedCopy(g *guarded) {
	//lint:ignore lockcheck the registry is quiescent while snapshotting
	snapshot := *g
	_ = &snapshot
}

// --- latch-tier idioms from the serving layer (DESIGN.md §10) ---

// pager mirrors store.Pager: a plain mutex over maps and counts.
type pager struct {
	mu    sync.Mutex
	pages map[int]int
}

// tree mirrors store.BTree / store.HeapFile: a structure RWMutex
// ("latch") over structural fields, shared by readers.
type tree struct {
	latch sync.RWMutex
	root  int
}

func pagerSnapshot(p *pager) pager { // want `result passes a lock by value: the type contains sync\.Mutex`
	return *p
}

func sumRoots(ts []tree) int {
	total := 0
	for _, t := range ts { // want `range value copies a lock: its type contains sync\.RWMutex; iterate by index or use pointers`
		total += t.root
	}
	return total
}

// descendThenSplit is the in-place latch upgrade a B-tree writer must
// never attempt: the writer queues behind its own read latch.
func (t *tree) descendThenSplit() {
	t.latch.RLock()
	defer t.latch.RUnlock()
	if t.root == 0 {
		t.latch.Lock() // want `t\.latch\.Lock\(\) while its read lock is held: an RWMutex cannot be upgraded`
		t.root = 1
		t.latch.Unlock()
	}
}

// lockShared / lockExclusive is the sql.Session idiom: the two
// acquisitions live in separate functions, so a caller that reads then
// writes re-enters through the exclusive path instead of upgrading —
// and the analyzer's straight-line check stays quiet.
func (t *tree) lockShared() func() {
	t.latch.RLock()
	return t.latch.RUnlock
}

func (t *tree) lockExclusive() func() {
	t.latch.Lock()
	return t.latch.Unlock
}

func (t *tree) readThenGrow() {
	unlock := t.lockShared()
	root := t.root
	unlock()
	defer t.lockExclusive()()
	t.root = root + 1
}

// --- checkpointer idioms (DESIGN.md §12) ---

// database mirrors db.DB's top of the hierarchy: qmu admits queries
// shared and transactions exclusive; stmu guards small counters.
type database struct {
	qmu  sync.RWMutex
	stmu sync.Mutex
	objs []int
}

// fuzzyFlushRounds is the sanctioned checkpoint shape: one fresh
// shared hold per flush round, released before the next, then one
// shared hold for the floor snapshot. Writers interleave between
// rounds and the analyzer sees no upgrade.
func (d *database) fuzzyFlushRounds() {
	for range d.objs {
		d.qmu.RLock()
		_ = len(d.objs)
		d.qmu.RUnlock()
	}
	d.qmu.RLock()
	defer d.qmu.RUnlock()
	d.stmu.Lock() // a different mutex under the shared hold is fine
	_ = len(d.objs)
	d.stmu.Unlock()
}

// stopTheWorldCheckpoint is the forbidden shape: "upgrading" the
// snapshot's shared hold to exclusive to stall writers queues the
// checkpointer behind its own read lock.
func (d *database) stopTheWorldCheckpoint() {
	d.qmu.RLock()
	defer d.qmu.RUnlock()
	d.qmu.Lock() // want `d\.qmu\.Lock\(\) while its read lock is held: an RWMutex cannot be upgraded`
	d.objs = nil
	d.qmu.Unlock()
}
