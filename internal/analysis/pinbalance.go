package analysis

import (
	"go/ast"
	"go/types"
)

// PinBalance enforces the pager pin protocol: every page returned
// pinned by Pager.Get or Pager.Allocate must either be released with
// Unpin in the same function (a deferred Unpin counts, covering every
// early return) or visibly transfer ownership — returned, stored, or
// passed to another function, which makes the callee responsible.
//
// The check is a per-function heuristic, not a path-sensitive proof: it
// catches the common leak (a pinned page that no code path ever
// unpins, which permanently shrinks the buffer pool and eventually
// starves it into ErrPoolExhausted) without false-flagging the
// branch-heavy release patterns the B-tree uses.
var PinBalance = &Analyzer{
	Name: "pinbalance",
	Doc: "report pages pinned by Pager.Get/Allocate that are never unpinned " +
		"and never escape the pinning function",
	Run: runPinBalance,
}

func runPinBalance(pass *Pass) error {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkPinBalance(pass, fd)
		}
	}
	return nil
}

// pinSite is one Get/Allocate call whose pinned result is bound to a
// local variable.
type pinSite struct {
	call   *ast.CallExpr
	method string
	obj    types.Object // the page variable; nil when discarded
}

func checkPinBalance(pass *Pass, fd *ast.FuncDecl) {
	var sites []pinSite
	// unpinned[obj] will flip to true when an Unpin(obj) call is seen;
	// escaped[obj] when the page leaves the function's hands.
	unpinned := map[types.Object]bool{}
	escaped := map[types.Object]bool{}

	walkStack(fd.Body, func(n ast.Node, stack []ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		method := ""
		if methodCallOn(pass.Info, call, "Pager", "Get") != nil {
			method = "Get"
		} else if methodCallOn(pass.Info, call, "Pager", "Allocate") != nil {
			method = "Allocate"
		}
		if method == "" {
			return true
		}
		parent := ast.Node(nil)
		if len(stack) > 0 {
			parent = stack[len(stack)-1]
		}
		switch p := parent.(type) {
		case *ast.AssignStmt:
			// p, err := pg.Get(id): bind the page variable.
			if len(p.Rhs) == 1 && p.Rhs[0] == call && len(p.Lhs) >= 1 {
				if id, ok := p.Lhs[0].(*ast.Ident); ok {
					if id.Name == "_" {
						pass.Reportf(call.Pos(), "pinned page from Pager.%s is discarded; the pin can never be released", method)
						return true
					}
					sites = append(sites, pinSite{call: call, method: method, obj: pass.Info.ObjectOf(id)})
					return true
				}
			}
			// Assigned into a field or index: ownership stored away.
			return true
		case *ast.ExprStmt:
			pass.Reportf(call.Pos(), "result of Pager.%s is discarded; the pinned page leaks", method)
			return true
		default:
			// Return value, call argument, etc.: ownership transfers to
			// whoever receives the page.
			return true
		}
	})
	if len(sites) == 0 {
		return
	}

	tracked := map[types.Object]bool{}
	for _, s := range sites {
		if s.obj != nil {
			tracked[s.obj] = true
		}
	}

	walkStack(fd.Body, func(n ast.Node, stack []ast.Node) bool {
		// Unpin(p) balances p, deferred or not.
		if call, ok := n.(*ast.CallExpr); ok {
			if methodCallOn(pass.Info, call, "Pager", "Unpin") != nil && len(call.Args) == 1 {
				if id, ok := call.Args[0].(*ast.Ident); ok {
					if obj := pass.Info.ObjectOf(id); tracked[obj] {
						unpinned[obj] = true
					}
				}
			}
			return true
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := pass.Info.ObjectOf(id)
		if !tracked[obj] || len(stack) == 0 {
			return true
		}
		if pinEscapes(id, stack) {
			escaped[obj] = true
		}
		return true
	})

	for _, s := range sites {
		if s.obj == nil || unpinned[s.obj] || escaped[s.obj] {
			continue
		}
		pass.Reportf(s.call.Pos(), "page %q pinned by Pager.%s is never unpinned in %s (defer Unpin, or hand the page off)",
			s.obj.Name(), s.method, fd.Name.Name)
		// One report per variable is enough.
		unpinned[s.obj] = true
	}
}

// pinEscapes classifies one use of a tracked page variable: does this
// occurrence hand the page to code outside the function's own
// statements?
func pinEscapes(id *ast.Ident, stack []ast.Node) bool {
	parent := stack[len(stack)-1]
	switch p := parent.(type) {
	case *ast.SelectorExpr:
		// p.Data, p.ID, p.MarkDirty(): plain use of the page.
		return false
	case *ast.IndexExpr, *ast.SliceExpr, *ast.BinaryExpr, *ast.IfStmt,
		*ast.SwitchStmt, *ast.CaseClause, *ast.ParenExpr, *ast.StarExpr:
		return false
	case *ast.AssignStmt:
		// On the left: reassignment of the variable (p = nil). On the
		// right: the page value flows into another binding.
		for _, l := range p.Lhs {
			if l == id {
				return false
			}
		}
		return true
	case *ast.CallExpr:
		// Argument position (the Unpin case was consumed by the caller
		// before descending here). The callee now shares the page.
		for _, a := range p.Args {
			if a == id {
				return true
			}
		}
		return false
	case *ast.ReturnStmt, *ast.CompositeLit, *ast.SendStmt, *ast.KeyValueExpr:
		return true
	case *ast.UnaryExpr:
		return true // &p and friends
	default:
		// Unknown context: assume it escapes rather than false-flag.
		return true
	}
}
