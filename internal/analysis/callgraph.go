package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// This file builds the whole-program call graph the dataflow tier
// walks. Nodes are function bodies (declared functions and function
// literals) keyed by a stable string ID, so the same function has the
// same identity whether it is seen source-checked in its own package or
// through export data from an importing one. Direct calls resolve to
// one callee; interface method calls devirtualize to every loaded type
// implementing the interface (the engine's VFS and PageLogger seams),
// which is what lets lock-set summaries flow through seam boundaries.

// FuncID is a stable, package-qualified function identity:
// "path.Func", "path.(Recv).Method", or "path.func@line" for literals.
type FuncID string

// FuncNode is one analyzable function body.
type FuncNode struct {
	ID   FuncID
	Name string // short human name for diagnostics, e.g. "store.(*Pager).Get"
	Pkg  *Package
	Decl *ast.FuncDecl // nil for function literals
	Body *ast.BlockStmt
	Pos  token.Pos

	cfg *CFG
}

// CFG returns the function's control-flow graph, built on first use.
func (f *FuncNode) CFG() *CFG {
	if f.cfg == nil {
		f.cfg = NewCFG(f.Body, f.Pkg.Info)
	}
	return f.cfg
}

// CallGraph indexes every function body in the program and resolves
// call expressions to callee IDs.
type CallGraph struct {
	prog  *Program
	Funcs map[FuncID]*FuncNode
	// Order is the deterministic iteration order of Funcs.
	Order []FuncID

	named       []namedType
	devirtCache map[*types.Func][]FuncID
	litIDs      map[*ast.FuncLit]FuncID
}

// namedType is one named type of a loaded package, a devirtualization
// candidate.
type namedType struct {
	named *types.Named
	pkg   *Package
}

func buildCallGraph(prog *Program) *CallGraph {
	cg := &CallGraph{
		prog:        prog,
		Funcs:       map[FuncID]*FuncNode{},
		devirtCache: map[*types.Func][]FuncID{},
		litIDs:      map[*ast.FuncLit]FuncID{},
	}
	for _, pkg := range prog.Pkgs {
		scope := pkg.Types.Scope()
		for _, name := range scope.Names() {
			if tn, ok := scope.Lookup(name).(*types.TypeName); ok && !tn.IsAlias() {
				if n, ok := types.Unalias(tn.Type()).(*types.Named); ok {
					cg.named = append(cg.named, namedType{named: n, pkg: pkg})
				}
			}
		}
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				id := FuncID("")
				if obj, ok := pkg.Info.Defs[fd.Name].(*types.Func); ok {
					id = typeFuncID(obj)
				}
				if id == "" {
					id = FuncID(pkg.ImportPath + "." + fd.Name.Name)
				}
				cg.addFunc(&FuncNode{
					ID:   id,
					Name: funcTitle(pkg, fd),
					Pkg:  pkg,
					Decl: fd,
					Body: fd.Body,
					Pos:  fd.Pos(),
				})
			}
			// Function literals are nodes of their own: a literal called
			// directly (or deferred) links into the graph; one launched
			// with `go` or stored in a variable is analyzed as a root.
			pkg := pkg
			ast.Inspect(file, func(n ast.Node) bool {
				lit, ok := n.(*ast.FuncLit)
				if !ok || lit.Body == nil {
					return true
				}
				pos := pkg.Fset.Position(lit.Pos())
				id := FuncID(fmt.Sprintf("%s.func@%d:%d", pkg.ImportPath, pos.Line, pos.Column))
				cg.litIDs[lit] = id
				cg.addFunc(&FuncNode{
					ID:   id,
					Name: fmt.Sprintf("%s.func@%d", pkgBase(pkg.ImportPath), pos.Line),
					Pkg:  pkg,
					Body: lit.Body,
					Pos:  lit.Pos(),
				})
				return true
			})
		}
	}
	sort.Slice(cg.Order, func(i, j int) bool { return cg.Order[i] < cg.Order[j] })
	return cg
}

func (cg *CallGraph) addFunc(fn *FuncNode) {
	if _, dup := cg.Funcs[fn.ID]; dup {
		return
	}
	cg.Funcs[fn.ID] = fn
	cg.Order = append(cg.Order, fn.ID)
}

// Callees resolves one call expression (appearing in pkg) to the IDs of
// the function bodies it may invoke. Direct calls and method calls on
// concrete types yield one callee; interface method calls yield every
// loaded implementation; calls through function values yield none.
func (cg *CallGraph) Callees(pkg *Package, call *ast.CallExpr) []FuncID {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.FuncLit:
		if id, ok := cg.litIDs[fun]; ok {
			return []FuncID{id}
		}
	case *ast.Ident:
		if fn, ok := pkg.Info.Uses[fun].(*types.Func); ok {
			return cg.known(typeFuncID(fn))
		}
	case *ast.SelectorExpr:
		if sel, ok := pkg.Info.Selections[fun]; ok && sel.Kind() == types.MethodVal {
			fn, ok := sel.Obj().(*types.Func)
			if !ok {
				return nil
			}
			if isInterfaceMethod(fn) {
				return cg.devirtualize(fn)
			}
			return cg.known(typeFuncID(fn))
		}
		// Qualified call of a package-level function (pkg.Fn).
		if fn, ok := pkg.Info.Uses[fun.Sel].(*types.Func); ok {
			if isInterfaceMethod(fn) {
				return cg.devirtualize(fn)
			}
			return cg.known(typeFuncID(fn))
		}
	}
	return nil
}

// known filters an ID down to functions we actually hold a body for.
func (cg *CallGraph) known(id FuncID) []FuncID {
	if id == "" {
		return nil
	}
	if _, ok := cg.Funcs[id]; !ok {
		return nil
	}
	return []FuncID{id}
}

// isInterfaceMethod reports whether fn's receiver is an interface.
func isInterfaceMethod(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	_, ok = types.Unalias(sig.Recv().Type()).Underlying().(*types.Interface)
	return ok
}

// devirtualize maps an interface method to the matching concrete method
// of every loaded type that implements the interface.
func (cg *CallGraph) devirtualize(fn *types.Func) []FuncID {
	if ids, ok := cg.devirtCache[fn]; ok {
		return ids
	}
	var ids []FuncID
	sig := fn.Type().(*types.Signature)
	iface, ok := types.Unalias(sig.Recv().Type()).Underlying().(*types.Interface)
	if ok {
		for _, cand := range cg.named {
			if _, isIface := cand.named.Underlying().(*types.Interface); isIface {
				continue
			}
			ptr := types.NewPointer(cand.named)
			if !types.Implements(cand.named, iface) && !types.Implements(ptr, iface) {
				continue
			}
			obj, _, _ := types.LookupFieldOrMethod(ptr, true, cand.pkg.Types, fn.Name())
			impl, ok := obj.(*types.Func)
			if !ok {
				continue
			}
			for _, id := range cg.known(typeFuncID(impl)) {
				ids = append(ids, id)
			}
		}
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	ids = dedupIDs(ids)
	cg.devirtCache[fn] = ids
	return ids
}

func dedupIDs(ids []FuncID) []FuncID {
	out := ids[:0]
	var prev FuncID
	for i, id := range ids {
		if i == 0 || id != prev {
			out = append(out, id)
		}
		prev = id
	}
	return out
}

// typeFuncID derives the stable ID of a declared function or method.
func typeFuncID(fn *types.Func) FuncID {
	if fn == nil || fn.Pkg() == nil {
		return ""
	}
	sig, ok := fn.Type().(*types.Signature)
	if ok && sig.Recv() != nil {
		t := types.Unalias(sig.Recv().Type())
		if ptr, ok := t.(*types.Pointer); ok {
			t = types.Unalias(ptr.Elem())
		}
		if named, ok := t.(*types.Named); ok {
			return FuncID(fn.Pkg().Path() + ".(" + named.Obj().Name() + ")." + fn.Name())
		}
		return "" // interface or anonymous receiver: no single body
	}
	return FuncID(fn.Pkg().Path() + "." + fn.Name())
}

// funcTitle is the short diagnostic name of a declared function.
func funcTitle(pkg *Package, fd *ast.FuncDecl) string {
	base := pkgBase(pkg.ImportPath)
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return base + "." + fd.Name.Name
	}
	t := fd.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return base + ".(" + id.Name + ")." + fd.Name.Name
	}
	return base + "." + fd.Name.Name
}

func pkgBase(path string) string {
	for i := len(path) - 1; i >= 0; i-- {
		if path[i] == '/' {
			return path[i+1:]
		}
	}
	return path
}
