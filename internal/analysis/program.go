package analysis

import (
	"fmt"
	"go/token"
	"sync"
)

// Program is the whole-engine view a dataflow analyzer works on: every
// loaded package plus the call graph spanning them. Per-package
// analyzers see syntax; program analyzers see flow.
type Program struct {
	Pkgs []*Package
	Fset *token.FileSet

	byFile map[string]*Package

	cgOnce sync.Once
	cg     *CallGraph
}

// NewProgram assembles a program over packages that share one FileSet
// (which everything produced by Load does).
func NewProgram(pkgs []*Package) *Program {
	p := &Program{Pkgs: pkgs, byFile: map[string]*Package{}}
	if len(pkgs) > 0 {
		p.Fset = pkgs[0].Fset
	}
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			p.byFile[pkg.Fset.Position(f.Pos()).Filename] = pkg
		}
	}
	return p
}

// PackageAt returns the package owning the file containing pos, or nil.
func (p *Program) PackageAt(pos token.Position) *Package {
	return p.byFile[pos.Filename]
}

// CallGraph builds (once) and returns the program's call graph.
func (p *Program) CallGraph() *CallGraph {
	p.cgOnce.Do(func() { p.cg = buildCallGraph(p) })
	return p.cg
}

// ProgramPass carries one program analyzer's reporting context.
type ProgramPass struct {
	Analyzer *Analyzer
	Prog     *Program

	diags *[]Diagnostic
}

// Reportf records a finding at pos unless a //lint:ignore annotation in
// the owning package covers it.
func (p *ProgramPass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Prog.Fset.Position(pos)
	if pkg := p.Prog.PackageAt(position); pkg != nil && pkg.suppressed(p.Analyzer.Name, position) {
		return
	}
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      position,
		Message:  fmt.Sprintf(format, args...),
	})
}

// RunProgramAnalyzer applies one program-level analyzer to the program.
func RunProgramAnalyzer(prog *Program, a *Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	pass := &ProgramPass{Analyzer: a, Prog: prog, diags: &diags}
	if err := a.RunProgram(pass); err != nil {
		return nil, fmt.Errorf("%s: %w", a.Name, err)
	}
	return diags, nil
}
