package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// LockCheck guards the two mutex invariants the concurrent paths
// (ttp.Registry, core.Operator) rely on:
//
//  1. values whose type transitively contains a sync.Mutex/RWMutex (or
//     any other stateful sync primitive) are never copied — a copied
//     lock guards nothing;
//  2. a goroutine holding an RWMutex read lock never calls Lock on the
//     same mutex: the writer blocks behind its own reader, a
//     self-deadlock that only manifests under contention.
//
// The upgrade check is ordered by source position within a function,
// which matches straight-line lock/unlock protocols; branch-interleaved
// locking that trips it can be annotated.
var LockCheck = &Analyzer{
	Name: "lockcheck",
	Doc: "report by-value copies of lock-bearing types and RWMutex read-to-write " +
		"upgrades while the read lock is held",
	Run: runLockCheck,
}

// syncStateful are the sync types whose value identity is their state.
var syncStateful = map[string]bool{
	"Mutex": true, "RWMutex": true, "Once": true,
	"WaitGroup": true, "Cond": true, "Pool": true, "Map": true,
}

func runLockCheck(pass *Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				checkLockSignature(pass, n.Recv, n.Type)
				if n.Body != nil {
					checkRLockUpgrade(pass, n)
				}
			case *ast.FuncLit:
				checkLockSignature(pass, nil, n.Type)
			case *ast.AssignStmt:
				checkLockAssign(pass, n)
			case *ast.CallExpr:
				checkLockArgs(pass, n)
			case *ast.RangeStmt:
				if n.Value != nil {
					// A `for _, v := range` value is a definition: its type
					// lives in Defs, not Types.
					var t types.Type
					if tv, ok := pass.Info.Types[n.Value]; ok {
						t = tv.Type
					} else if id, ok := n.Value.(*ast.Ident); ok {
						if obj := pass.Info.ObjectOf(id); obj != nil {
							t = obj.Type()
						}
					}
					if name := lockInType(t); name != "" {
						pass.Reportf(n.Value.Pos(), "range value copies a lock: its type contains %s; iterate by index or use pointers", name)
					}
				}
			}
			return true
		})
	}
	return nil
}

// lockInType reports the sync type name (e.g. "sync.RWMutex") if t
// transitively contains a stateful sync primitive by value, else "".
func lockInType(t types.Type) string {
	return lockIn(t, map[*types.Named]bool{})
}

func lockIn(t types.Type, seen map[*types.Named]bool) string {
	if t == nil {
		return ""
	}
	t = types.Unalias(t)
	switch t := t.(type) {
	case *types.Named:
		obj := t.Obj()
		if obj.Pkg() != nil && obj.Pkg().Path() == "sync" && syncStateful[obj.Name()] {
			return "sync." + obj.Name()
		}
		if seen[t] {
			return ""
		}
		seen[t] = true
		return lockIn(t.Underlying(), seen)
	case *types.Struct:
		for i := 0; i < t.NumFields(); i++ {
			if name := lockIn(t.Field(i).Type(), seen); name != "" {
				return name
			}
		}
	case *types.Array:
		return lockIn(t.Elem(), seen)
	}
	return ""
}

// checkLockSignature flags by-value receivers, parameters and results
// whose types carry locks.
func checkLockSignature(pass *Pass, recv *ast.FieldList, ft *ast.FuncType) {
	lists := []*ast.FieldList{recv, ft.Params, ft.Results}
	kinds := []string{"receiver", "parameter", "result"}
	for i, fl := range lists {
		if fl == nil {
			continue
		}
		for _, field := range fl.List {
			tv, ok := pass.Info.Types[field.Type]
			if !ok {
				continue
			}
			if _, isPtr := types.Unalias(tv.Type).(*types.Pointer); isPtr {
				continue
			}
			if name := lockInType(tv.Type); name != "" {
				pass.Reportf(field.Type.Pos(), "%s passes a lock by value: the type contains %s; use a pointer", kinds[i], name)
			}
		}
	}
}

// copyish reports whether e produces a fresh value rather than copying
// an existing one: composite literals and call results are births, not
// copies.
func copyish(e ast.Expr) bool {
	switch e := e.(type) {
	case *ast.CompositeLit, *ast.CallExpr, *ast.FuncLit:
		return false
	case *ast.ParenExpr:
		return copyish(e.X)
	}
	return true
}

func checkLockAssign(pass *Pass, n *ast.AssignStmt) {
	for _, rhs := range n.Rhs {
		if !copyish(rhs) {
			continue
		}
		tv, ok := pass.Info.Types[rhs]
		if !ok {
			continue
		}
		if name := lockInType(tv.Type); name != "" {
			pass.Reportf(rhs.Pos(), "assignment copies a lock: the value's type contains %s; use a pointer", name)
		}
	}
}

func checkLockArgs(pass *Pass, call *ast.CallExpr) {
	for _, arg := range call.Args {
		if !copyish(arg) {
			continue
		}
		tv, ok := pass.Info.Types[arg]
		if !ok {
			continue
		}
		if name := lockInType(tv.Type); name != "" {
			pass.Reportf(arg.Pos(), "call passes a lock by value: the argument's type contains %s; pass a pointer", name)
		}
	}
}

// lockEvent is one RWMutex operation, ordered by source position.
type lockEvent struct {
	pos      token.Pos
	recv     string // printable receiver expression, e.g. "op.mu"
	op       string // RLock, RUnlock, Lock
	deferred bool
}

// checkRLockUpgrade walks one function's RWMutex calls in source order
// and reports Lock while the same receiver's read lock is still held. A
// deferred RUnlock does not release until return, so it never clears
// the held state.
func checkRLockUpgrade(pass *Pass, fd *ast.FuncDecl) {
	var events []lockEvent
	walkStack(fd.Body, func(n ast.Node, stack []ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		op := sel.Sel.Name
		if op != "RLock" && op != "RUnlock" && op != "Lock" {
			return true
		}
		named := namedOf(pass.Info.Types[sel.X].Type)
		if named == nil || named.Obj().Pkg() == nil ||
			named.Obj().Pkg().Path() != "sync" || named.Obj().Name() != "RWMutex" {
			return true
		}
		deferred := false
		if len(stack) > 0 {
			if d, ok := stack[len(stack)-1].(*ast.DeferStmt); ok && d.Call == call {
				deferred = true
			}
		}
		events = append(events, lockEvent{
			pos:      call.Pos(),
			recv:     types.ExprString(sel.X),
			op:       op,
			deferred: deferred,
		})
		return true
	})
	sort.Slice(events, func(i, j int) bool { return events[i].pos < events[j].pos })

	held := map[string]bool{}
	for _, e := range events {
		switch {
		case e.op == "RLock" && !e.deferred:
			held[e.recv] = true
		case e.op == "RUnlock" && !e.deferred:
			held[e.recv] = false
		case e.op == "Lock" && held[e.recv]:
			pass.Reportf(e.pos, "%s.Lock() while its read lock is held: an RWMutex cannot be upgraded and this deadlocks under contention", e.recv)
		}
	}
}
