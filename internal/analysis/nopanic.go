package analysis

import (
	"go/ast"
	"go/types"
)

// noPanicScopes are the package names treated as library code paths:
// a panic or a silently dropped error inside them takes down or
// corrupts a query instead of failing it cleanly.
var noPanicScopes = map[string]bool{"store": true, "db": true, "sql": true}

// NoPanic keeps errors flowing through return values in the engine's
// library packages. Two shapes are flagged: calls to the panic builtin,
// and statement-position calls whose final error result is implicitly
// dropped. An explicit `_ =` assignment is the sanctioned way to state
// "this error is intentionally unhandled"; a deliberate invariant panic
// carries a //lint:ignore annotation with its justification.
var NoPanic = &Analyzer{
	Name: "nopanic",
	Doc: "report panics and implicitly dropped error results in store/db/sql " +
		"library code; errors must propagate to the query layer",
	Run: runNoPanic,
}

func runNoPanic(pass *Pass) error {
	if !noPanicScopes[pass.Pkg.Name()] {
		return nil
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				if id, ok := n.Fun.(*ast.Ident); ok {
					if pass.Info.Uses[id] == types.Universe.Lookup("panic") {
						pass.Reportf(n.Pos(), "panic in library code path; propagate an error instead (or annotate the invariant with lint:ignore)")
					}
				}
			case *ast.ExprStmt:
				call, ok := n.X.(*ast.CallExpr)
				if !ok {
					return true
				}
				if name := droppedErrorCall(pass.Info, call); name != "" {
					pass.Reportf(n.Pos(), "error result of %s is silently dropped; handle it or assign it to _ explicitly", name)
				}
			}
			return true
		})
	}
	return nil
}

// infallibleRecv lists receiver types whose error-returning methods are
// documented to never fail (the same carve-out errcheck ships with):
// flagging them would train people to scatter meaningless `_ =`.
func infallibleRecv(t types.Type) bool {
	n := namedOf(t)
	if n == nil || n.Obj().Pkg() == nil {
		return false
	}
	pkg, name := n.Obj().Pkg().Path(), n.Obj().Name()
	return (pkg == "strings" && name == "Builder") ||
		(pkg == "bytes" && name == "Buffer") ||
		pkg == "hash"
}

// droppedErrorCall reports the printable callee when call's final
// result is an error being discarded by statement position, else "".
func droppedErrorCall(info *types.Info, call *ast.CallExpr) string {
	tv, ok := info.Types[call]
	if !ok {
		return ""
	}
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		if rtv, ok := info.Types[sel.X]; ok && infallibleRecv(rtv.Type) {
			return ""
		}
	}
	var last types.Type
	switch t := tv.Type.(type) {
	case *types.Tuple:
		if t.Len() == 0 {
			return ""
		}
		last = t.At(t.Len() - 1).Type()
	default:
		last = t
	}
	if !isErrorType(last) {
		return ""
	}
	return types.ExprString(call.Fun)
}
