package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// This file computes per-function lock-set summaries — which locks a
// function acquires, releases, and holds across each call — and
// propagates them bottom-up through the call graph, RacerD-style. The
// lockorder analyzer consumes the summaries to build the global
// lock-acquisition-order graph; errpath reuses the op recognizer for
// its per-path balance check.
//
// Lock identity is class-based: every instance of store.Pager shares
// the identity "store.Pager.mu", which is the right granularity for an
// order policy (the sanctioned order is between tiers, not instances).
// A lock reached through an accessor method keeps the accessor as its
// field ("db.DB.QueryLock()"), and function-local mutexes are keyed by
// their defining function.
//
// The engine's unlock-closure idiom is modeled explicitly: a function
// returning `l.RUnlock` (or a closure that unlocks) advertises those
// releases, and a call through a local variable or struct field bound
// to such a value (`unlock := s.lockShared(); unlock()`,
// `s.txUnlock()`) counts as performing the releases itself.

// modeBits is a lock-mode set: read, write, or both (join of paths).
type modeBits uint8

const (
	bitR modeBits = 1 << iota
	bitW
)

func (m modeBits) String() string {
	switch m {
	case bitR:
		return "read"
	case bitW:
		return "write"
	case bitR | bitW:
		return "read|write"
	}
	return "none"
}

// LockID names one lock class: the owning type (or package/function for
// loose mutexes) plus the field or accessor that reaches it.
type LockID struct {
	Owner string // qualified owner, e.g. "lexequal/internal/store.Pager"
	Field string // "mu", "latch", "QueryLock()"
}

func (l LockID) String() string { return l.Owner + "." + l.Field }

// Short is the diagnostic-friendly form: "store.Pager.mu".
func (l LockID) Short() string {
	owner := l.Owner
	if i := strings.LastIndexByte(owner, '/'); i >= 0 {
		owner = owner[i+1:]
	}
	return owner + "." + l.Field
}

// lockOp is one recognized mutex operation.
type lockOp struct {
	lock    LockID
	mode    modeBits
	acquire bool
	pos     token.Pos
}

// lockSet is a may-held set: lock → modes it may be held in.
type lockSet map[LockID]modeBits

func (s lockSet) clone() lockSet {
	out := make(lockSet, len(s))
	for k, v := range s {
		out[k] = v
	}
	return out
}

// equal reports set equality.
func (s lockSet) equal(o lockSet) bool {
	if len(s) != len(o) {
		return false
	}
	for k, v := range s {
		if o[k] != v {
			return false
		}
	}
	return true
}

// union merges o into s, reporting whether s grew.
func (s lockSet) union(o lockSet) bool {
	grew := false
	for k, v := range o {
		if s[k]&v != v {
			s[k] |= v
			grew = true
		}
	}
	return grew
}

// clear removes modes m of lock l from s.
func (s lockSet) clear(l LockID, m modeBits) {
	if left := s[l] &^ m; left != 0 {
		s[l] = left
	} else {
		delete(s, l)
	}
}

// intersect keeps only the modes present in both sets, reporting
// whether s shrank. Used for must-sets, whose join is intersection.
func (s lockSet) intersect(o lockSet) bool {
	shrank := false
	for k, v := range s {
		if kept := v & o[k]; kept != v {
			shrank = true
			if kept != 0 {
				s[k] = kept
			} else {
				delete(s, k)
			}
		}
	}
	return shrank
}

// lockState is the in-flight dataflow fact, split by provenance: locks
// acquired directly in this function versus inherited from a callee's
// net holds (a handoff, like db.Begin exiting with txmu held). The
// split exists because inherited holds must not survive a loop back
// edge — a handoff covers the statements that follow the call, but
// letting it persist across iterations makes every driver running
// BEGIN…COMMIT in a loop look like it interleaves lock orders it never
// takes.
type lockState struct {
	direct    lockSet
	inherited lockSet
	// mustRel is the must-released-since-entry set: locks this function
	// has explicitly unlocked on every path to here without reacquiring
	// them. It lets call-site edge generation see through the drop-lock,
	// call-down, retake-lock idiom (the WAL group-commit leader).
	mustRel lockSet
}

func newLockState() lockState {
	return lockState{direct: lockSet{}, inherited: lockSet{}, mustRel: lockSet{}}
}

func (s lockState) clone() lockState {
	return lockState{
		direct:    s.direct.clone(),
		inherited: s.inherited.clone(),
		mustRel:   s.mustRel.clone(),
	}
}

// held is the union view used for edge generation and release checks.
func (s lockState) held() lockSet {
	out := s.direct.clone()
	out.union(s.inherited)
	return out
}

func (s lockState) holds(l LockID, m modeBits) bool {
	return (s.direct[l]|s.inherited[l])&m != 0
}

func (s lockState) release(l LockID, m modeBits) {
	s.direct.clear(l, m)
	s.inherited.clear(l, m)
}

// event is one flow-relevant occurrence inside a block, in execution
// order: a lock operation or a call.
type event struct {
	op       *lockOp       // non-nil for lock operations
	call     *ast.CallExpr // non-nil for calls
	callees  []FuncID      // resolved callees of call
	deferred bool          // registered by a defer statement
	isGo     bool          // launched on a new goroutine
	pos      token.Pos
}

// transEntry records that a function (transitively) acquires a lock.
type transEntry struct {
	bits modeBits
	via  string // immediate callee the acquisition was inherited from; "" if local
	pos  token.Pos
	// relBefore: locks (and modes) provably released, on every path,
	// before this acquisition happens — so a caller holding one of them
	// does not actually nest it around the acquire.
	relBefore lockSet
	relSet    bool // relBefore initialized (empty set ≠ uninitialized)
}

// acqSite is one local acquire with the locks held on arrival.
type acqSite struct {
	op      *lockOp
	held    lockSet
	mustRel lockSet
}

// callSite is one resolved call with the locks held across it.
type callSite struct {
	callees  []FuncID
	pos      token.Pos
	held     lockSet
	mustRel  lockSet
	deferred bool
	isGo     bool
}

// lockSummary is one function's lock behavior.
type lockSummary struct {
	fn       *FuncNode
	resolver *lockResolver
	events   [][]event // per CFG block, execution order

	// Fixpoint outputs.
	netHolds    lockSet // may be held at exit (beyond what was held at entry)
	netReleases lockSet // released at exit without a matching local acquire
	trans       map[LockID]transEntry

	// Final recording-pass outputs.
	acquires []acqSite
	calls    []callSite

	deferredReleases map[LockID]modeBits
	deferredCallees  map[FuncID]bool
}

// fieldKey identifies a struct field that stores an unlock closure.
type fieldKey struct {
	owner, field string
}

// lockSummaries is the whole-program summary table.
type lockSummaries struct {
	prog *Program
	cg   *CallGraph
	byID map[FuncID]*lockSummary

	// retRel: releases a function hands back to its caller as a
	// returned closure or method value (lockShared returns l.RUnlock).
	retRel map[FuncID][]lockOp
	// fieldRel: releases performed by invoking the closure stored in a
	// struct field (s.txUnlock()).
	fieldRel map[fieldKey][]lockOp
}

// maxSummaryRounds bounds the interprocedural fixpoints; the engine's
// call depth is far below this, so hitting the cap just means a sound
// but slightly stale summary.
const maxSummaryRounds = 16

func computeLockSummaries(prog *Program) *lockSummaries {
	cg := prog.CallGraph()
	ls := &lockSummaries{
		prog:     prog,
		cg:       cg,
		byID:     map[FuncID]*lockSummary{},
		retRel:   map[FuncID][]lockOp{},
		fieldRel: map[fieldKey][]lockOp{},
	}
	for _, id := range cg.Order {
		ls.byID[id] = &lockSummary{
			fn:               cg.Funcs[id],
			resolver:         newLockResolver(cg.Funcs[id]),
			netHolds:         lockSet{},
			netReleases:      lockSet{},
			trans:            map[LockID]transEntry{},
			deferredReleases: map[LockID]modeBits{},
			deferredCallees:  map[FuncID]bool{},
		}
	}
	ls.computeReturnReleases()
	for _, id := range cg.Order {
		s := ls.byID[id]
		s.events = ls.extractEvents(s)
	}
	for round := 0; round < maxSummaryRounds; round++ {
		changed := false
		for _, id := range cg.Order {
			if ls.flow(ls.byID[id], false) {
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	// Recording pass with stabilized summaries.
	for _, id := range cg.Order {
		ls.flow(ls.byID[id], true)
	}
	ls.computeTrans()
	return ls
}

// ---- unlock-closure modeling ----

// computeReturnReleases fills retRel (releases a function returns as a
// closure) and fieldRel (releases a stored closure field performs).
// retRel needs its own fixpoint because acquireDB forwards lockShared's
// closure through its own return.
func (ls *lockSummaries) computeReturnReleases() {
	for round := 0; round < maxSummaryRounds; round++ {
		changed := false
		for _, id := range ls.cg.Order {
			s := ls.byID[id]
			var ops []lockOp
			ast.Inspect(s.fn.Body, func(n ast.Node) bool {
				if _, ok := n.(*ast.FuncLit); ok {
					return false // a literal's returns are its own
				}
				ret, ok := n.(*ast.ReturnStmt)
				if !ok {
					return true
				}
				for _, e := range ret.Results {
					ops = append(ops, ls.releaseOpsOfExpr(s, e, 0)...)
				}
				return true
			})
			ops = dedupOps(ops)
			if !sameOps(ls.retRel[id], ops) {
				ls.retRel[id] = ops
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	for _, id := range ls.cg.Order {
		s := ls.byID[id]
		info := s.fn.Pkg.Info
		ast.Inspect(s.fn.Body, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok || len(as.Lhs) != len(as.Rhs) {
				return true
			}
			for i, lhs := range as.Lhs {
				sel, ok := lhs.(*ast.SelectorExpr)
				if !ok {
					continue
				}
				tsel, ok := info.Selections[sel]
				if !ok || tsel.Kind() != types.FieldVal {
					continue
				}
				owner := ownerTypeName(tsel.Recv())
				if owner == "" {
					continue
				}
				if ops := ls.releaseOpsOfExpr(s, as.Rhs[i], 0); len(ops) > 0 {
					k := fieldKey{owner: owner, field: sel.Sel.Name}
					ls.fieldRel[k] = dedupOps(append(ls.fieldRel[k], ops...))
				}
			}
			return true
		})
	}
}

// releaseOpsOfExpr resolves an expression to the releases invoking it
// as a closure would perform: an unlock method value, a literal that
// unlocks, a call whose callees return such a closure, or a local
// variable bound to one of those.
func (ls *lockSummaries) releaseOpsOfExpr(s *lockSummary, e ast.Expr, depth int) []lockOp {
	if depth > 4 {
		return nil
	}
	info := s.fn.Pkg.Info
	switch e := ast.Unparen(e).(type) {
	case *ast.SelectorExpr:
		m, ok := lockMethods[e.Sel.Name]
		if !ok || m.acquire {
			return nil
		}
		tv, ok := info.Types[e.X]
		if !ok {
			return nil
		}
		kind := mutexKind(tv.Type)
		if kind == "" || (kind == "Mutex" && e.Sel.Name == "RUnlock") {
			return nil
		}
		mode := m.mode
		if kind == "Mutex" {
			mode = bitW
		}
		return []lockOp{{lock: s.resolver.resolveRoot(e.X), mode: mode, pos: e.Pos()}}
	case *ast.FuncLit:
		var ops []lockOp
		ast.Inspect(e.Body, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok {
				if op := s.resolver.lockOpOf(call); op != nil && !op.acquire {
					ops = append(ops, *op)
				}
			}
			return true
		})
		return ops
	case *ast.CallExpr:
		var ops []lockOp
		for _, id := range ls.cg.Callees(s.fn.Pkg, e) {
			ops = append(ops, ls.retRel[id]...)
		}
		return ops
	case *ast.Ident:
		if init, ok := s.resolver.inits[info.ObjectOf(e)]; ok && init != nil {
			return ls.releaseOpsOfExpr(s, init, depth+1)
		}
	}
	return nil
}

// valueCallReleases resolves a call through a function value — a local
// closure variable or a stored closure field — to the releases it
// performs; nil when the value is not a known unlock closure.
func (ls *lockSummaries) valueCallReleases(s *lockSummary, call *ast.CallExpr) []lockOp {
	info := s.fn.Pkg.Info
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if v, ok := info.ObjectOf(fun).(*types.Var); ok {
			if init, ok := s.resolver.inits[v]; ok && init != nil {
				return ls.releaseOpsOfExpr(s, init, 0)
			}
		}
	case *ast.SelectorExpr:
		if tsel, ok := info.Selections[fun]; ok && tsel.Kind() == types.FieldVal {
			if owner := ownerTypeName(tsel.Recv()); owner != "" {
				return ls.fieldRel[fieldKey{owner: owner, field: fun.Sel.Name}]
			}
		}
	}
	return nil
}

func dedupOps(ops []lockOp) []lockOp {
	seen := map[string]bool{}
	out := ops[:0]
	for _, op := range ops {
		k := op.lock.String() + "/" + op.mode.String()
		if !seen[k] {
			seen[k] = true
			out = append(out, op)
		}
	}
	return out
}

func sameOps(a, b []lockOp) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].lock != b[i].lock || a[i].mode != b[i].mode {
			return false
		}
	}
	return true
}

// ---- event extraction ----

// extractEvents collects each block's lock operations and calls in
// execution order. Function-literal bodies are analyzed as their own
// graph nodes and pruned here.
func (ls *lockSummaries) extractEvents(s *lockSummary) [][]event {
	g := s.fn.CFG()
	out := make([][]event, len(g.Blocks))
	for bi, blk := range g.Blocks {
		for _, n := range blk.Nodes {
			switch n := n.(type) {
			case *ast.DeferStmt:
				out[bi] = append(out[bi], ls.nodeEvents(s, n.Call, true, false)...)
				continue
			case *ast.GoStmt:
				out[bi] = append(out[bi], ls.nodeEvents(s, n.Call, false, true)...)
				continue
			}
			out[bi] = append(out[bi], ls.nodeEvents(s, n, false, false)...)
		}
	}
	return out
}

// nodeEvents walks one node for lock ops and calls.
func (ls *lockSummaries) nodeEvents(s *lockSummary, n ast.Node, deferred, isGo bool) []event {
	var out []event
	ast.Inspect(n, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false // separate graph node; the enclosing CallExpr (if any) was already recorded
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if op := s.resolver.lockOpOf(call); op != nil {
			out = append(out, event{op: op, deferred: deferred, isGo: isGo, pos: call.Pos()})
			return true
		}
		callees := ls.cg.Callees(s.fn.Pkg, call)
		if len(callees) == 0 && !isGo {
			// A call through a function value: a known unlock closure
			// performs its releases right here.
			for _, op := range ls.valueCallReleases(s, call) {
				rel := op
				rel.pos = call.Pos()
				out = append(out, event{op: &rel, deferred: deferred, pos: call.Pos()})
			}
			return true
		}
		out = append(out, event{
			call:     call,
			callees:  callees,
			deferred: deferred,
			isGo:     isGo,
			pos:      call.Pos(),
		})
		return true
	})
	return out
}

// ---- intra-function dataflow ----

// backEdge reports whether blk→e is a loop back edge: only loop heads
// receive them, always from a block created later than the head.
func backEdge(blk *Block, e *Edge) bool {
	return (e.To.What == "for.head" || e.To.What == "range.head") && e.To.Index < blk.Index
}

// flow runs the intra-function may-held dataflow with the current
// callee summaries. With record set it also fills acquires/calls.
// Returns whether netHolds/netReleases changed.
func (ls *lockSummaries) flow(s *lockSummary, record bool) bool {
	g := s.fn.CFG()
	in := make([]*lockState, len(g.Blocks))
	entry := newLockState()
	in[g.Entry.Index] = &entry
	netReleases := lockSet{}
	if record {
		s.acquires = nil
		s.calls = nil
	}

	work := []*Block{g.Entry}
	inWork := map[int]bool{g.Entry.Index: true}
	for len(work) > 0 {
		blk := work[0]
		work = work[1:]
		inWork[blk.Index] = false
		state := in[blk.Index].clone()
		for i := range s.events[blk.Index] {
			ev := &s.events[blk.Index][i]
			switch {
			case ev.op != nil && ev.op.acquire:
				if ev.deferred || ev.isGo {
					break // a deferred or goroutine acquire transfers nothing here
				}
				if record {
					s.acquires = append(s.acquires, acqSite{
						op:      ev.op,
						held:    state.held(),
						mustRel: state.mustRel.clone(),
					})
				}
				state.direct[ev.op.lock] |= ev.op.mode
				state.mustRel.clear(ev.op.lock, ev.op.mode)
			case ev.op != nil:
				if ev.isGo {
					break
				}
				if ev.deferred {
					s.deferredReleases[ev.op.lock] |= ev.op.mode
					break
				}
				if !state.holds(ev.op.lock, ev.op.mode) {
					netReleases[ev.op.lock] |= ev.op.mode
				}
				state.release(ev.op.lock, ev.op.mode)
				state.mustRel[ev.op.lock] |= ev.op.mode
			case ev.call != nil:
				if record && len(ev.callees) > 0 {
					s.calls = append(s.calls, callSite{
						callees:  ev.callees,
						pos:      ev.pos,
						held:     state.held(),
						mustRel:  state.mustRel.clone(),
						deferred: ev.deferred,
						isGo:     ev.isGo,
					})
				}
				if ev.isGo {
					break // runs concurrently: no lock transfer
				}
				if ev.deferred {
					for _, id := range ev.callees {
						s.deferredCallees[id] = true
					}
					break // effects apply at exit
				}
				for _, id := range ev.callees {
					cs := ls.byID[id]
					if cs == nil {
						continue
					}
					// Releases first, exit holds second: a *Locked
					// helper drops the caller's lock and exits holding
					// its own retake.
					for l, m := range cs.netReleases {
						state.release(l, m)
					}
					state.inherited.union(cs.netHolds)
					for l, m := range cs.netHolds {
						state.mustRel.clear(l, m) // a callee handoff re-arms the lock
					}
				}
			}
		}
		for _, e := range blk.Succs {
			dst := e.To.Index
			grew := false
			if in[dst] == nil {
				ns := state.clone()
				in[dst] = &ns
				grew = true
				if backEdge(blk, e) {
					in[dst].inherited = lockSet{}
				}
			} else {
				if in[dst].direct.union(state.direct) {
					grew = true
				}
				// Inherited handoffs do not survive a loop back edge;
				// see the lockState comment.
				if !backEdge(blk, e) {
					if in[dst].inherited.union(state.inherited) {
						grew = true
					}
				}
				// The must-release join is intersection.
				if in[dst].mustRel.intersect(state.mustRel) {
					grew = true
				}
			}
			if grew && !inWork[dst] {
				inWork[dst] = true
				work = append(work, e.To)
			}
		}
	}

	// Exit state, with at-exit defers applied.
	netHolds := lockSet{}
	if exit := in[g.Exit.Index]; exit != nil {
		netHolds = exit.held()
	}
	for l, m := range s.deferredReleases {
		if netHolds[l]&m != m {
			netReleases[l] |= m &^ netHolds[l]
		}
		netHolds.clear(l, m)
	}
	for id := range s.deferredCallees {
		cs := ls.byID[id]
		if cs == nil {
			continue
		}
		for l, m := range cs.netReleases {
			// Only the unmatched remainder is a net release of the
			// caller's own entry state; the rest balances local holds.
			if rem := m &^ netHolds[l]; rem != 0 {
				netReleases[l] |= rem
			}
			netHolds.clear(l, m)
		}
		netHolds.union(cs.netHolds)
	}

	changed := !s.netHolds.equal(netHolds) || !s.netReleases.equal(netReleases)
	s.netHolds = netHolds
	s.netReleases = netReleases
	return changed
}

// computeTrans propagates "may acquire" sets bottom-up: a function
// transitively acquires everything it locks locally plus everything its
// (non-goroutine) callees transitively acquire.
func (ls *lockSummaries) computeTrans() {
	for _, id := range ls.cg.Order {
		s := ls.byID[id]
		for _, a := range s.acquires {
			e := s.trans[a.op.lock]
			e.bits |= a.op.mode
			if e.pos == token.NoPos {
				e.pos = a.op.pos
			}
			mergeRelBefore(&e, a.mustRel)
			s.trans[a.op.lock] = e
		}
	}
	for round := 0; round < maxSummaryRounds; round++ {
		changed := false
		for _, id := range ls.cg.Order {
			s := ls.byID[id]
			for _, c := range s.calls {
				if c.isGo {
					continue
				}
				for _, calleeID := range c.callees {
					cs := ls.byID[calleeID]
					if cs == nil {
						continue
					}
					for l, ce := range cs.trans {
						e := s.trans[l]
						grew := e.bits&ce.bits != ce.bits
						e.bits |= ce.bits
						if e.via == "" && e.pos == token.NoPos {
							e.via = cs.fn.Name
							e.pos = c.pos
						}
						// The acquire is preceded by whatever this call
						// site released plus whatever the callee itself
						// releases before the acquire.
						cand := c.mustRel.clone()
						cand.union(ce.relBefore)
						if mergeRelBefore(&e, cand) {
							grew = true
						}
						if grew {
							s.trans[l] = e
							changed = true
						}
					}
				}
			}
		}
		if !changed {
			break
		}
	}
}

// mergeRelBefore folds one witness's released-before set into a trans
// entry (intersection across witnesses), reporting any change.
func mergeRelBefore(e *transEntry, rel lockSet) bool {
	if !e.relSet {
		e.relSet = true
		e.relBefore = rel.clone()
		return len(e.relBefore) > 0
	}
	return e.relBefore.intersect(rel)
}

// ---- lock-operation recognition ----

// lockMethods maps method names to (mode, acquire) on sync mutexes.
var lockMethods = map[string]struct {
	mode    modeBits
	acquire bool
}{
	"Lock":     {bitW, true},
	"TryLock":  {bitW, true},
	"RLock":    {bitR, true},
	"TryRLock": {bitR, true},
	"Unlock":   {bitW, false},
	"RUnlock":  {bitR, false},
}

// lockResolver resolves the receiver expression of a mutex method call
// to a LockID, chasing local variables to their initializer so
// `l := d.QueryLock(); l.RLock()` keys on the accessor, not the
// temporary.
type lockResolver struct {
	fn    *FuncNode
	inits map[types.Object]ast.Expr
	depth int
}

func newLockResolver(fn *FuncNode) *lockResolver {
	r := &lockResolver{fn: fn, inits: map[types.Object]ast.Expr{}}
	info := fn.Pkg.Info
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if len(n.Lhs) == len(n.Rhs) {
				for i, lhs := range n.Lhs {
					if id, ok := lhs.(*ast.Ident); ok {
						if obj := info.ObjectOf(id); obj != nil {
							if _, seen := r.inits[obj]; !seen {
								r.inits[obj] = n.Rhs[i]
							} else {
								r.inits[obj] = nil // multiple assignments: give up
							}
						}
					}
				}
			}
		case *ast.ValueSpec:
			if len(n.Names) == len(n.Values) {
				for i, name := range n.Names {
					if obj := info.ObjectOf(name); obj != nil {
						r.inits[obj] = n.Values[i]
					}
				}
			}
		}
		return true
	})
	return r
}

// mutexKind reports "Mutex"/"RWMutex" when t is (a pointer to) one.
func mutexKind(t types.Type) string {
	if t == nil {
		return ""
	}
	t = types.Unalias(t)
	if ptr, ok := t.(*types.Pointer); ok {
		t = types.Unalias(ptr.Elem())
	}
	n, ok := t.(*types.Named)
	if !ok || n.Obj().Pkg() == nil || n.Obj().Pkg().Path() != "sync" {
		return ""
	}
	switch n.Obj().Name() {
	case "Mutex", "RWMutex":
		return n.Obj().Name()
	}
	return ""
}

// lockOpOf recognizes call as a mutex operation and resolves its lock.
func (r *lockResolver) lockOpOf(call *ast.CallExpr) *lockOp {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	m, ok := lockMethods[sel.Sel.Name]
	if !ok {
		return nil
	}
	info := r.fn.Pkg.Info
	tv, ok := info.Types[sel.X]
	if !ok {
		return nil
	}
	kind := mutexKind(tv.Type)
	if kind == "" {
		return nil
	}
	mode := m.mode
	if kind == "Mutex" {
		mode = bitW // a plain Mutex has no read mode
		if sel.Sel.Name == "RLock" || sel.Sel.Name == "RUnlock" || sel.Sel.Name == "TryRLock" {
			return nil
		}
	}
	lock := r.resolveRoot(sel.X)
	return &lockOp{lock: lock, mode: mode, acquire: m.acquire, pos: call.Pos()}
}

// resolveRoot derives the class identity of a lock expression.
func (r *lockResolver) resolveRoot(e ast.Expr) LockID {
	r.depth = 0
	return r.resolve(e)
}

func (r *lockResolver) resolve(e ast.Expr) LockID {
	info := r.fn.Pkg.Info
	if r.depth++; r.depth > 10 {
		return r.fallback(e)
	}
	switch e := ast.Unparen(e).(type) {
	case *ast.UnaryExpr:
		if e.Op.String() == "&" {
			return r.resolve(e.X)
		}
	case *ast.StarExpr:
		return r.resolve(e.X)
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[e]; ok && sel.Kind() == types.FieldVal {
			if owner := ownerTypeName(sel.Recv()); owner != "" {
				return LockID{Owner: owner, Field: e.Sel.Name}
			}
		}
		// Qualified package-level variable (pkg.Var).
		if v, ok := info.Uses[e.Sel].(*types.Var); ok && v.Pkg() != nil {
			return LockID{Owner: v.Pkg().Path(), Field: v.Name()}
		}
	case *ast.CallExpr:
		if sel, ok := ast.Unparen(e.Fun).(*ast.SelectorExpr); ok {
			if tv, ok := info.Types[sel.X]; ok {
				if owner := ownerTypeName(tv.Type); owner != "" {
					return LockID{Owner: owner, Field: sel.Sel.Name + "()"}
				}
			}
			if fn, ok := info.Uses[sel.Sel].(*types.Func); ok && fn.Pkg() != nil {
				return LockID{Owner: fn.Pkg().Path(), Field: fn.Name() + "()"}
			}
		}
		if id, ok := ast.Unparen(e.Fun).(*ast.Ident); ok {
			if fn, ok := info.Uses[id].(*types.Func); ok && fn.Pkg() != nil {
				return LockID{Owner: fn.Pkg().Path(), Field: fn.Name() + "()"}
			}
		}
	case *ast.Ident:
		obj := info.ObjectOf(e)
		if v, ok := obj.(*types.Var); ok {
			if v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
				return LockID{Owner: v.Pkg().Path(), Field: v.Name()}
			}
			if init, ok := r.inits[obj]; ok && init != nil {
				return r.resolve(init)
			}
		}
	}
	return r.fallback(e)
}

// fallback keys an unrecognized lock expression to its function.
func (r *lockResolver) fallback(e ast.Expr) LockID {
	return LockID{
		Owner: r.fn.Pkg.ImportPath + "." + r.fn.Name,
		Field: types.ExprString(e),
	}
}

// ownerTypeName qualifies the named type owning a field or accessor.
func ownerTypeName(t types.Type) string {
	if t == nil {
		return ""
	}
	t = types.Unalias(t)
	if ptr, ok := t.(*types.Pointer); ok {
		t = types.Unalias(ptr.Elem())
	}
	n, ok := t.(*types.Named)
	if !ok || n.Obj().Pkg() == nil {
		return ""
	}
	return n.Obj().Pkg().Path() + "." + n.Obj().Name()
}
