package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// CorruptErr enforces wrap-tolerant error matching. The storage layer
// classifies damage through sentinel errors (ErrCorrupt, ErrDeleted,
// ErrStopScan, …) and concrete types (CorruptPageError), and every
// layer above wraps errors with %w as they propagate. A comparison with
// == or a type assertion sees only the outermost wrapper, so it works
// in unit tests and silently stops matching the first time a call site
// adds context — exactly the regression errors.Is/errors.As exist to
// prevent.
var CorruptErr = &Analyzer{
	Name: "corrupterr",
	Doc: "report ==/!= comparisons against error sentinels and type assertions on " +
		"concrete error types; use errors.Is and errors.As so wrapped errors still match",
	Run: runCorruptErr,
}

func runCorruptErr(pass *Pass) error {
	for _, file := range pass.Files {
		walkStack(file, func(n ast.Node, stack []ast.Node) bool {
			switch n := n.(type) {
			case *ast.BinaryExpr:
				if n.Op != token.EQL && n.Op != token.NEQ {
					return true
				}
				name := sentinelName(pass.Info, n.X)
				if name == "" {
					name = sentinelName(pass.Info, n.Y)
				}
				if name == "" || inIsMethod(stack) {
					return true
				}
				pass.Reportf(n.Pos(), "comparison with %s using %s breaks once the error is wrapped; use errors.Is", name, n.Op)
			case *ast.TypeAssertExpr:
				if n.Type == nil {
					return true // the `x.(type)` of a type switch; cases handled below
				}
				if name := concreteErrorType(pass.Info, n.X, n.Type); name != "" && !inIsMethod(stack) {
					pass.Reportf(n.Pos(), "type assertion to %s sees only the outermost error; use errors.As", name)
				}
			case *ast.TypeSwitchStmt:
				operand := typeSwitchOperand(n)
				if operand == nil {
					return true
				}
				for _, c := range n.Body.List {
					cc, ok := c.(*ast.CaseClause)
					if !ok {
						continue
					}
					for _, t := range cc.List {
						if name := concreteErrorType(pass.Info, operand, t); name != "" && !inIsMethod(stack) {
							pass.Reportf(t.Pos(), "type switch case on %s sees only the outermost error; use errors.As", name)
						}
					}
				}
			case *ast.SwitchStmt:
				if n.Tag == nil {
					return true
				}
				tv, ok := pass.Info.Types[n.Tag]
				if !ok || !isErrorType(tv.Type) {
					return true
				}
				for _, c := range n.Body.List {
					cc, ok := c.(*ast.CaseClause)
					if !ok {
						continue
					}
					for _, e := range cc.List {
						if name := sentinelName(pass.Info, e); name != "" && !inIsMethod(stack) {
							pass.Reportf(e.Pos(), "switch case matches %s by identity and breaks once the error is wrapped; use errors.Is", name)
						}
					}
				}
			}
			return true
		})
	}
	return nil
}

// sentinelName reports expr as a package-level error sentinel variable
// (ErrCorrupt, io.EOF, …), returning its printable name or "".
func sentinelName(info *types.Info, expr ast.Expr) string {
	var id *ast.Ident
	prefix := ""
	switch e := expr.(type) {
	case *ast.Ident:
		id = e
	case *ast.SelectorExpr:
		if x, ok := e.X.(*ast.Ident); ok {
			if pn, ok := info.Uses[x].(*types.PkgName); ok {
				prefix = pn.Name() + "."
				id = e.Sel
			}
		}
	}
	if id == nil {
		return ""
	}
	v, ok := info.Uses[id].(*types.Var)
	if !ok || v.Pkg() == nil || v.Parent() != v.Pkg().Scope() {
		return ""
	}
	if !isErrorType(v.Type()) {
		return ""
	}
	if !strings.HasPrefix(v.Name(), "Err") && !strings.HasPrefix(v.Name(), "err") && v.Name() != "EOF" {
		return ""
	}
	return prefix + v.Name()
}

// concreteErrorType reports the printable type name when operand is an
// error being asserted to a concrete (non-interface) named type whose
// name ends in "Error", else "".
func concreteErrorType(info *types.Info, operand, typ ast.Expr) string {
	tv, ok := info.Types[operand]
	if !ok || !isErrorType(tv.Type) {
		return ""
	}
	t, ok := info.Types[typ]
	if !ok {
		return ""
	}
	n := namedOf(t.Type)
	if n == nil || !strings.HasSuffix(n.Obj().Name(), "Error") {
		return ""
	}
	if _, isIface := n.Underlying().(*types.Interface); isIface {
		return ""
	}
	if pkg := n.Obj().Pkg(); pkg != nil {
		return pkg.Name() + "." + n.Obj().Name()
	}
	return n.Obj().Name()
}

// typeSwitchOperand extracts x from `switch y := x.(type)` or
// `switch x.(type)`.
func typeSwitchOperand(n *ast.TypeSwitchStmt) ast.Expr {
	switch s := n.Assign.(type) {
	case *ast.ExprStmt:
		if ta, ok := s.X.(*ast.TypeAssertExpr); ok {
			return ta.X
		}
	case *ast.AssignStmt:
		if len(s.Rhs) == 1 {
			if ta, ok := s.Rhs[0].(*ast.TypeAssertExpr); ok {
				return ta.X
			}
		}
	}
	return nil
}

// inIsMethod reports whether the stack is inside an `Is` or `As` method
// with a receiver: the errors.Is/As protocol implementations are the
// one place identity comparison is the point.
func inIsMethod(stack []ast.Node) bool {
	fd := enclosingFunc(stack)
	return fd != nil && fd.Recv != nil && (fd.Name.Name == "Is" || fd.Name.Name == "As")
}
