package analysis

import (
	"go/ast"
	"path/filepath"
)

// vfsScopes are the package names whose file I/O must go through the
// store.VFS seam. Anything these packages do behind the seam's back is
// invisible to FaultFS, which silently shrinks the crash-consistency
// sweeps' coverage.
var vfsScopes = map[string]bool{"store": true, "db": true, "wal": true}

// vfsSeamFile is the one file per package allowed to touch the os
// package directly: the seam implementation itself.
const vfsSeamFile = "vfs.go"

// osFileFuncs are the os functions that read or mutate the filesystem.
// Pure path helpers (os.IsNotExist, os.Getenv, …) and constants
// (os.O_RDWR) are not listed.
var osFileFuncs = map[string]bool{
	"Open": true, "OpenFile": true, "Create": true, "CreateTemp": true,
	"ReadFile": true, "WriteFile": true, "ReadDir": true, "NewFile": true,
	"Remove": true, "RemoveAll": true, "Rename": true, "Truncate": true,
	"Mkdir": true, "MkdirAll": true, "MkdirTemp": true,
	"Stat": true, "Lstat": true, "Chmod": true, "Chtimes": true,
	"Link": true, "Symlink": true, "ReadLink": true, "Readlink": true,
}

// VFSOnly forbids direct os file I/O in the storage packages outside
// the seam file, so every byte the engine moves is observable (and
// faultable) through store.VFS.
var VFSOnly = &Analyzer{
	Name: "vfsonly",
	Doc: "report direct os file I/O in the store/db packages outside vfs.go; " +
		"all engine I/O must flow through the store.VFS seam so fault injection stays exhaustive",
	Run: runVFSOnly,
}

func runVFSOnly(pass *Pass) error {
	if !vfsScopes[pass.Pkg.Name()] {
		return nil
	}
	for _, file := range pass.Files {
		if filepath.Base(pass.Filename(file.Pos())) == vfsSeamFile {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if name := pkgFuncName(pass.Info, call, "os"); osFileFuncs[name] {
				pass.Reportf(call.Pos(), "direct os.%s bypasses the store.VFS seam; route it through a VFS so fault injection sees this I/O", name)
			}
			return true
		})
	}
	return nil
}
