package analysis_test

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"

	"lexequal/internal/analysis"
)

// The CFG tests locate blocks through mark("...") calls placed in the
// source and assert the edges between them, so they pin control-flow
// shape without depending on block numbering.

func buildCFG(t *testing.T, src, fn string) *analysis.CFG {
	t.Helper()
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "cfg_test.go", "package p\nfunc mark(string) {}\n"+src, 0)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	for _, decl := range file.Decls {
		if fd, ok := decl.(*ast.FuncDecl); ok && fd.Name.Name == fn {
			return analysis.NewCFG(fd.Body, nil)
		}
	}
	t.Fatalf("function %q not found", fn)
	return nil
}

// markBlock finds the block containing the call mark(label).
func markBlock(t *testing.T, g *analysis.CFG, label string) *analysis.Block {
	t.Helper()
	for _, blk := range g.Blocks {
		for _, n := range blk.Nodes {
			found := false
			ast.Inspect(n, func(m ast.Node) bool {
				call, ok := m.(*ast.CallExpr)
				if !ok || len(call.Args) != 1 {
					return true
				}
				if id, ok := call.Fun.(*ast.Ident); !ok || id.Name != "mark" {
					return true
				}
				if lit, ok := call.Args[0].(*ast.BasicLit); ok && lit.Value == `"`+label+`"` {
					found = true
				}
				return !found
			})
			if found {
				return blk
			}
		}
	}
	t.Fatalf("no block contains mark(%q)", label)
	return nil
}

func hasEdge(from, to *analysis.Block) bool {
	for _, e := range from.Succs {
		if e.To == to {
			return true
		}
	}
	return false
}

// nodeBlock finds the (first) block containing a node of type T.
func nodeBlock[T ast.Node](g *analysis.CFG) (*analysis.Block, T) {
	var zero T
	for _, blk := range g.Blocks {
		for _, n := range blk.Nodes {
			if t, ok := n.(T); ok {
				return blk, t
			}
		}
	}
	return nil, zero
}

func TestCFGLabeledBreakContinue(t *testing.T) {
	g := buildCFG(t, `
func f(n int) {
outer:
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if j == 5 {
				mark("breaking")
				break outer
			}
			if j == 6 {
				mark("continuing")
				continue outer
			}
			mark("inner")
		}
		mark("outerTail")
	}
	mark("done")
}`, "f")

	breaking := markBlock(t, g, "breaking")
	done := markBlock(t, g, "done")
	if !hasEdge(breaking, done) {
		t.Errorf("break outer should jump straight to the outer loop's after block")
	}
	continuing := markBlock(t, g, "continuing")
	outerTail := markBlock(t, g, "outerTail")
	if hasEdge(continuing, outerTail) {
		t.Errorf("continue outer must skip the outer loop body tail")
	}
	// continue outer targets the outer post block (the one holding i++).
	var post *analysis.Block
	for _, e := range continuing.Succs {
		for _, n := range e.To.Nodes {
			if inc, ok := n.(*ast.IncDecStmt); ok {
				if id, ok := inc.X.(*ast.Ident); ok && id.Name == "i" {
					post = e.To
				}
			}
		}
	}
	if post == nil {
		t.Errorf("continue outer should target the outer loop's post block")
	}
}

func TestCFGSelect(t *testing.T) {
	g := buildCFG(t, `
func f(c, d chan int) {
	mark("head")
	select {
	case <-c:
		mark("a")
	case v := <-d:
		_ = v
		mark("b")
	}
	mark("after")
}`, "f")

	head := markBlock(t, g, "head")
	a := markBlock(t, g, "a")
	b := markBlock(t, g, "b")
	after := markBlock(t, g, "after")
	if !hasEdge(head, a) || !hasEdge(head, b) {
		t.Errorf("select head must branch to every comm clause")
	}
	if !hasEdge(a, after) || !hasEdge(b, after) {
		t.Errorf("every comm clause must rejoin after the select")
	}
	if hasEdge(head, after) {
		t.Errorf("a select with no default blocks; there is no head→after edge")
	}
}

func TestCFGPanicEdge(t *testing.T) {
	g := buildCFG(t, `
func f(x int) {
	if x == 0 {
		mark("doomed")
		panic("boom")
	}
	mark("ok")
}`, "f")

	doomed := markBlock(t, g, "doomed")
	var toExit *analysis.Edge
	for _, e := range doomed.Succs {
		if e.To == g.Exit {
			toExit = e
		}
	}
	if toExit == nil {
		t.Fatalf("panic block must edge to the exit block")
	}
	if !toExit.Panic {
		t.Errorf("the exit edge of a panic must be marked Panic")
	}
	ok := markBlock(t, g, "ok")
	if hasEdge(doomed, ok) {
		t.Errorf("control cannot continue past panic")
	}
	for _, e := range ok.Succs {
		if e.To == g.Exit && e.Panic {
			t.Errorf("a plain return edge must not be marked Panic")
		}
	}
}

func TestCFGDeferStaysAtRegistration(t *testing.T) {
	g := buildCFG(t, `
func f(x bool) {
	if x {
		mark("then")
		defer mark("cleanup")
	}
	mark("tail")
}`, "f")

	blk, d := nodeBlock[*ast.DeferStmt](g)
	if blk == nil {
		t.Fatalf("DeferStmt must appear as a node in its registration block")
	}
	_ = d
	then := markBlock(t, g, "then")
	if blk != then {
		t.Errorf("a conditional defer must live in the branch that registers it, got block %d (%s)", blk.Index, blk.What)
	}
	if len(g.Exit.Nodes) != 0 {
		t.Errorf("the synthetic exit block holds no statements")
	}
}

func TestCFGSwitchFallthrough(t *testing.T) {
	g := buildCFG(t, `
func f(x int) {
	switch x {
	case 0:
		mark("zero")
		fallthrough
	case 1:
		mark("one")
	}
	mark("after")
}`, "f")

	zero := markBlock(t, g, "zero")
	one := markBlock(t, g, "one")
	after := markBlock(t, g, "after")
	if !hasEdge(zero, one) {
		t.Errorf("fallthrough must edge into the next case body")
	}
	if hasEdge(zero, after) {
		t.Errorf("a case ending in fallthrough does not break to after")
	}
	if !hasEdge(one, after) {
		t.Errorf("the last case breaks to after")
	}
	headHasAfter := false
	for _, blk := range g.Blocks {
		for _, e := range blk.Succs {
			if e.To == after && blk != one && blk != zero {
				headHasAfter = true
			}
		}
	}
	if !headHasAfter {
		t.Errorf("a switch without default needs a head→after edge")
	}
}

func TestCFGErrGatedEdges(t *testing.T) {
	g := buildCFG(t, `
func f() error {
	err := work()
	if err != nil {
		mark("fail")
		return err
	}
	mark("okpath")
	return nil
}
func work() error { return nil }`, "f")

	fail := markBlock(t, g, "fail")
	okpath := markBlock(t, g, "okpath")
	var failEdge, okEdge *analysis.Edge
	for _, blk := range g.Blocks {
		for _, e := range blk.Succs {
			if e.To == fail {
				failEdge = e
			}
			if e.To == okpath {
				okEdge = e
			}
		}
	}
	if failEdge == nil || failEdge.Cond == nil || failEdge.Negate {
		t.Errorf("the error arm must carry the branch condition un-negated")
	}
	if okEdge == nil || okEdge.Cond == nil || !okEdge.Negate {
		t.Errorf("the success arm must carry the negated branch condition")
	}
}
