package repl

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"net"
	"strings"
	"sync"
	"time"

	"lexequal/internal/db"
	"lexequal/internal/frame"
)

// ErrResync is the follower-side cannot-resume error: the primary
// refused to serve from the follower's position (segments retired past
// the retention cap, or diverged history). The follower must be
// re-seeded from a copy of the primary's directory; the apply loop
// stops retrying once it sees this.
var ErrResync = errors.New("repl: resync required")

// FollowerInfo is a snapshot of the apply loop's state, for STATUS.
type FollowerInfo struct {
	// Primary is the address being followed.
	Primary string
	// Connected reports whether a stream is currently established.
	Connected bool
	// AppliedLSN is the follower's applied (and locally durable)
	// horizon — reads serve at this point.
	AppliedLSN uint64
	// PrimaryLSN is the primary's last LSN as of the latest batch or
	// heartbeat (0 before the first contact).
	PrimaryLSN uint64
	// Lag is PrimaryLSN - AppliedLSN in records (0 when caught up).
	Lag uint64
	// Batches and Records count replication work since start.
	Batches, Records uint64
	// LastErr is the most recent connection/apply error ("" when none,
	// or after a successful reconnect).
	LastErr string
	// Resync reports the terminal resync-required state.
	Resync bool
}

// Follower runs the continuous apply loop of a replica: dial the
// primary, hand it the local log's last LSN, append + apply every
// batch, ack, and reconnect with backoff when the link drops. One
// Follower per replica database.
type Follower struct {
	d       *db.DB
	primary string

	dial func(addr string) (net.Conn, error)

	mu        sync.Mutex
	conn      net.Conn
	connected bool
	primLSN   uint64
	batches   uint64
	records   uint64
	lastErr   error
	resync    bool
	stopped   bool

	stop chan struct{}
	done chan struct{}
}

// StartFollower starts the apply loop against the primary address. The
// database must have been opened with Options.Replica. Stop ends the
// loop; the caller still owns closing the database afterwards.
func StartFollower(d *db.DB, primary string) (*Follower, error) {
	if !d.IsReplica() {
		return nil, errors.New("repl: database was not opened as a replica")
	}
	f := &Follower{
		d:       d,
		primary: primary,
		dial: func(addr string) (net.Conn, error) {
			return net.DialTimeout("tcp", addr, 5*time.Second)
		},
		stop: make(chan struct{}),
		done: make(chan struct{}),
	}
	go f.loop()
	return f, nil
}

// Info snapshots the apply loop's state.
func (f *Follower) Info() FollowerInfo {
	f.mu.Lock()
	defer f.mu.Unlock()
	info := FollowerInfo{
		Primary:    f.primary,
		Connected:  f.connected,
		AppliedLSN: f.d.AppliedLSN(),
		PrimaryLSN: f.primLSN,
		Batches:    f.batches,
		Records:    f.records,
		Resync:     f.resync,
	}
	if f.lastErr != nil {
		info.LastErr = f.lastErr.Error()
	}
	if info.PrimaryLSN > info.AppliedLSN {
		info.Lag = info.PrimaryLSN - info.AppliedLSN
	}
	return info
}

// Stop ends the apply loop and waits for it to exit. The replica
// database keeps serving reads at its applied horizon; Stop does not
// close it.
func (f *Follower) Stop() {
	f.mu.Lock()
	if f.stopped {
		f.mu.Unlock()
		<-f.done
		return
	}
	f.stopped = true
	conn := f.conn
	f.mu.Unlock()
	close(f.stop)
	if conn != nil {
		conn.Close()
	}
	<-f.done
}

func (f *Follower) setErr(err error) {
	f.mu.Lock()
	f.lastErr = err
	f.mu.Unlock()
}

// loop reconnects with exponential backoff (100ms doubling to 3s,
// reset after a successful stream) until stopped or told to resync.
func (f *Follower) loop() {
	defer close(f.done)
	backoff := 100 * time.Millisecond
	for {
		select {
		case <-f.stop:
			return
		default:
		}
		served, err := f.runOnce()
		if errors.Is(err, ErrResync) {
			f.mu.Lock()
			f.resync = true
			f.lastErr = err
			f.mu.Unlock()
			return
		}
		if err != nil {
			f.setErr(err)
		}
		if served {
			backoff = 100 * time.Millisecond
		}
		select {
		case <-f.stop:
			return
		case <-time.After(backoff):
		}
		if backoff *= 2; backoff > 3*time.Second {
			backoff = 3 * time.Second
		}
	}
}

// runOnce runs one connection lifetime: handshake at the local log's
// last LSN, then append + apply batches until the link breaks. served
// reports whether the handshake was accepted (resets the backoff).
func (f *Follower) runOnce() (served bool, err error) {
	l := f.d.WAL()
	conn, err := f.dial(f.primary)
	if err != nil {
		return false, err
	}
	defer conn.Close()
	f.mu.Lock()
	if f.stopped {
		f.mu.Unlock()
		return false, nil
	}
	f.conn = conn
	f.mu.Unlock()
	defer func() {
		f.mu.Lock()
		f.conn = nil
		f.connected = false
		f.mu.Unlock()
	}()

	if err := frame.Write(conn, []byte(Handshake(l.LastLSN()))); err != nil {
		return false, err
	}
	r := bufio.NewReader(conn)
	resp, err := frame.Read(r)
	if err != nil {
		return false, err
	}
	if len(resp) == 0 || resp[0] != '+' {
		msg := strings.TrimPrefix(string(resp), "-")
		if strings.Contains(msg, resyncMarker) {
			return false, fmt.Errorf("%w: primary said: %s", ErrResync, msg)
		}
		return false, fmt.Errorf("repl: handshake refused: %s", msg)
	}
	f.mu.Lock()
	f.connected = true
	f.lastErr = nil
	f.mu.Unlock()

	ack := func(applied uint64) error {
		var a [9]byte
		a[0] = frameAck
		binary.LittleEndian.PutUint64(a[1:], applied)
		return frame.Write(conn, a[:])
	}
	for {
		payload, err := frame.Read(r)
		if err != nil {
			return true, err
		}
		if len(payload) == 0 {
			return true, errors.New("repl: empty frame from primary")
		}
		switch payload[0] {
		case frameBatch:
			before := f.d.AppliedLSN()
			applied, err := f.d.ApplyBatch(payload[1:])
			if err != nil {
				// The batch is in the local log; a restart replays it.
				// The in-memory state may be torn, so the apply loop
				// stops rather than serving ahead of it.
				return true, err
			}
			f.mu.Lock()
			f.batches++
			if applied > before {
				f.records += applied - before
			}
			if applied > f.primLSN {
				f.primLSN = applied
			}
			f.mu.Unlock()
			if err := ack(applied); err != nil {
				return true, err
			}
		case frameHeartbeat:
			if len(payload) == 9 {
				f.mu.Lock()
				f.primLSN = binary.LittleEndian.Uint64(payload[1:])
				f.mu.Unlock()
			}
			if err := ack(f.d.AppliedLSN()); err != nil {
				return true, err
			}
		case '-':
			msg := string(payload[1:])
			if strings.Contains(msg, resyncMarker) {
				return true, fmt.Errorf("%w: primary said: %s", ErrResync, msg)
			}
			return true, fmt.Errorf("repl: primary error: %s", msg)
		default:
			return true, fmt.Errorf("repl: unknown frame type %q from primary", payload[0])
		}
	}
}
