// Package repl implements WAL-shipping replication (DESIGN.md §16):
// a primary streams its durable log records to followers over the
// length-prefixed frame protocol, and a follower appends + applies
// them into its own database, serving read-only sessions at its
// applied horizon.
//
// Wire protocol, layered on internal/frame (every message one frame):
//
//	follower → primary  "REPL FOLLOW <lastLSN>"        handshake
//	primary  → follower "+OK last_lsn=<n>"             accepted
//	                    "-<message>"                    refused (a message
//	                     containing "resync required" is the deterministic
//	                     cannot-resume signal: the follower must be
//	                     re-seeded from a copy of the primary's directory)
//	primary  → follower 'W' + raw records               a batch, LSN-contiguous
//	                    'H' + uint64 LE                 heartbeat: primary's last LSN
//	follower → primary  'A' + uint64 LE                 ack: follower's applied LSN
//
// The primary sends every record verbatim (checkpoint records
// included — they keep the LSN run contiguous; replicas ignore them),
// never sends a record that is not yet durable, and holds segment GC
// back for each connected follower at its last acked LSN, up to the
// configured retention cap.
package repl

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"net"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"lexequal/internal/frame"
	"lexequal/internal/wal"
)

// handshakePrefix opens a replication stream in place of a first SQL
// statement.
const handshakePrefix = "REPL FOLLOW "

// Frame type markers (first payload byte after the handshake).
const (
	frameBatch     = 'W'
	frameHeartbeat = 'H'
	frameAck       = 'A'
)

// resyncMarker is the substring both sides use to recognize the
// deterministic cannot-resume refusal.
const resyncMarker = "resync required"

// IsHandshake reports whether a request payload opens a replication
// stream.
func IsHandshake(stmt string) bool {
	return strings.HasPrefix(strings.TrimSpace(stmt), handshakePrefix)
}

// Handshake renders the handshake payload for a follower at lastLSN.
func Handshake(lastLSN uint64) string {
	return handshakePrefix + strconv.FormatUint(lastLSN, 10)
}

// Config tunes a Primary. The zero value picks defaults.
type Config struct {
	// RetainSegments caps how many live WAL segments follower pins may
	// hold back from GC; a follower needing older segments is broken
	// into resync-required. 0 = unlimited.
	RetainSegments int
	// Heartbeat is the idle-stream heartbeat interval (default 1s).
	Heartbeat time.Duration
	// BatchBytes bounds one 'W' frame (default 256 KiB; always kept
	// under the frame limit).
	BatchBytes int
}

// Primary streams WAL records to followers. One Primary serves any
// number of concurrent follower connections; the serving layer hands
// each connection to Serve after spotting the handshake frame.
type Primary struct {
	log *wal.Log
	cfg Config

	mu        sync.Mutex
	followers map[string]*followerConn
	nextID    uint64
	closed    bool
}

type followerConn struct {
	id      string
	conn    net.Conn
	sr      *wal.StreamReader
	acked   atomic.Uint64
	started time.Time
}

// FollowerStatus is one connected follower's replication state, for
// STATUS reporting.
type FollowerStatus struct {
	ID       string
	AckedLSN uint64
	Since    time.Duration
}

// NewPrimary builds the primary-side streaming service over the log.
func NewPrimary(l *wal.Log, cfg Config) *Primary {
	if cfg.Heartbeat <= 0 {
		cfg.Heartbeat = time.Second
	}
	if cfg.BatchBytes <= 0 {
		cfg.BatchBytes = 256 << 10
	}
	if cfg.BatchBytes > frame.MaxFrame-1 {
		cfg.BatchBytes = frame.MaxFrame - 1
	}
	if cfg.RetainSegments > 0 {
		l.SetRetentionSegments(cfg.RetainSegments)
	}
	return &Primary{log: l, cfg: cfg, followers: make(map[string]*followerConn)}
}

// Followers snapshots the connected followers' replication state.
func (p *Primary) Followers() []FollowerStatus {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]FollowerStatus, 0, len(p.followers))
	for _, f := range p.followers {
		out = append(out, FollowerStatus{ID: f.id, AckedLSN: f.acked.Load(), Since: time.Since(f.started)})
	}
	return out
}

// Close stops every active stream. Connections are owned (and closed)
// by the serving layer; Close just makes their Serve calls return.
func (p *Primary) Close() {
	p.mu.Lock()
	p.closed = true
	conns := make([]*followerConn, 0, len(p.followers))
	for _, f := range p.followers {
		conns = append(conns, f)
	}
	p.mu.Unlock()
	for _, f := range conns {
		f.sr.Stop()
		f.conn.SetReadDeadline(time.Now())
	}
}

// refuse sends a '-' response and returns nil (a refused handshake is
// a served request, not a transport failure).
func refuse(conn net.Conn, msg string) error {
	return frame.Write(conn, append([]byte{'-'}, msg...))
}

// Serve runs one replication stream on a connection whose first frame
// was the given handshake. It returns when the follower disconnects,
// the primary closes, or the stream fails; the caller closes the
// connection. r must be the buffered reader already wrapping conn
// (bytes after the handshake frame may sit in its buffer).
func (p *Primary) Serve(conn net.Conn, r *bufio.Reader, handshake string) error {
	arg := strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(handshake), handshakePrefix))
	lsn, err := strconv.ParseUint(arg, 10, 64)
	if err != nil {
		refuse(conn, fmt.Sprintf("repl: bad handshake %q", handshake))
		return fmt.Errorf("repl: bad handshake %q", handshake)
	}
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return refuse(conn, "repl: primary shutting down")
	}
	p.nextID++
	id := fmt.Sprintf("%s#%d", conn.RemoteAddr(), p.nextID)
	p.mu.Unlock()

	l := p.log
	// Pin before validating: GC must not unlink the resume segment
	// between the check and the first read.
	l.PinRetention(id, lsn)
	defer l.ReleaseRetention(id)
	first, err := l.FirstLiveLSN()
	if err != nil {
		refuse(conn, "repl: "+err.Error())
		return err
	}
	last := l.LastLSN()
	if lsn > last {
		// The follower has records this primary never wrote — a
		// diverged history (e.g. the primary was restored from a
		// backup). Only a re-seed can reconcile them.
		return refuse(conn, fmt.Sprintf(
			"repl: %s: follower at lsn %d is ahead of primary at %d (diverged history)", resyncMarker, lsn, last))
	}
	if lsn+1 < first {
		return refuse(conn, fmt.Sprintf(
			"repl: %s: follower needs lsn %d but the oldest live record is %d (segments were retired); re-seed the follower from a copy of the primary's directory", resyncMarker, lsn+1, first))
	}
	sr, err := l.NewStreamReader(lsn + 1)
	if err != nil {
		if errors.Is(err, wal.ErrResyncRequired) {
			return refuse(conn, "repl: "+resyncMarker+": "+err.Error())
		}
		refuse(conn, "repl: "+err.Error())
		return err
	}
	defer sr.Close()

	f := &followerConn{id: id, conn: conn, sr: sr, started: time.Now()}
	f.acked.Store(lsn)
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return refuse(conn, "repl: primary shutting down")
	}
	p.followers[id] = f
	p.mu.Unlock()
	defer func() {
		p.mu.Lock()
		delete(p.followers, id)
		p.mu.Unlock()
	}()

	if err := frame.Write(conn, []byte(fmt.Sprintf("+OK last_lsn=%d", last))); err != nil {
		return err
	}

	// The connection is full duplex from here: this goroutine writes
	// batches, a ticker goroutine writes heartbeats (sharing wmu), and
	// an ack reader advances the retention pin. Any of them failing
	// stops the stream reader, which unblocks the others.
	var wmu sync.Mutex
	stop := make(chan struct{})
	defer close(stop)
	go func() {
		t := time.NewTicker(p.cfg.Heartbeat)
		defer t.Stop()
		for {
			select {
			case <-stop:
				return
			case <-t.C:
				var hb [9]byte
				hb[0] = frameHeartbeat
				binary.LittleEndian.PutUint64(hb[1:], l.LastLSN())
				wmu.Lock()
				err := frame.Write(conn, hb[:])
				wmu.Unlock()
				if err != nil {
					sr.Stop()
					return
				}
			}
		}
	}()
	go func() {
		for {
			payload, err := frame.Read(r)
			if err != nil {
				sr.Stop()
				return
			}
			if len(payload) == 9 && payload[0] == frameAck {
				acked := binary.LittleEndian.Uint64(payload[1:])
				l.AdvanceRetention(id, acked)
				f.acked.Store(acked)
			}
		}
	}()

	buf := make([]byte, 0, p.cfg.BatchBytes+1)
	for {
		if l.RetentionBroken(id) {
			// The retention cap retired segments this follower still
			// needs; tell it deterministically instead of letting the
			// next segment read fail with a confusing open error.
			wmu.Lock()
			refuse(conn, "repl: "+resyncMarker+": follower fell behind the retention cap")
			wmu.Unlock()
			return nil
		}
		raw, _, err := sr.Next()
		if err != nil {
			if errors.Is(err, wal.ErrStreamStopped) {
				return nil
			}
			if l.RetentionBroken(id) {
				wmu.Lock()
				refuse(conn, "repl: "+resyncMarker+": follower fell behind the retention cap")
				wmu.Unlock()
				return nil
			}
			return err
		}
		buf = append(buf[:0], frameBatch)
		buf = append(buf, raw...)
		for len(buf) < p.cfg.BatchBytes && sr.Ready() {
			raw, _, err = sr.Next()
			if err != nil {
				break // surface on the next loop iteration's Next
			}
			if len(buf)+len(raw) > p.cfg.BatchBytes {
				// Keep the batch under the frame limit; re-reading this
				// record is not possible, so flush what we have plus it
				// only if it fits — otherwise send it alone next round.
				buf2 := append([]byte{frameBatch}, raw...)
				wmu.Lock()
				werr := frame.Write(conn, buf)
				if werr == nil {
					werr = frame.Write(conn, buf2)
				}
				wmu.Unlock()
				if werr != nil {
					return werr
				}
				buf = buf[:0]
				break
			}
			buf = append(buf, raw...)
		}
		if len(buf) > 1 {
			wmu.Lock()
			werr := frame.Write(conn, buf)
			wmu.Unlock()
			if werr != nil {
				return werr
			}
		}
	}
}
