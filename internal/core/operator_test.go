package core

import (
	"strings"
	"testing"

	"lexequal/internal/phoneme"
	"lexequal/internal/script"
)

func newOp(t *testing.T) *Operator {
	t.Helper()
	op, err := New(Options{})
	if err != nil {
		t.Fatal(err)
	}
	return op
}

func en(s string) Text { return Text{Value: s, Lang: script.English} }
func hi(s string) Text { return Text{Value: s, Lang: script.Hindi} }
func ta(s string) Text { return Text{Value: s, Lang: script.Tamil} }
func el(s string) Text { return Text{Value: s, Lang: script.Greek} }

func TestOptionsDefaults(t *testing.T) {
	op := newOp(t)
	if op.ICSC() != DefaultICSC {
		t.Errorf("default ICSC = %v", op.ICSC())
	}
	if op.Threshold() != DefaultThreshold {
		t.Errorf("default threshold = %v", op.Threshold())
	}
	if op.Registry() == nil || op.Clusters() == nil || op.Cost() == nil {
		t.Error("nil defaults")
	}
	// Explicit zero ICSC (Soundex mode) must be honored.
	op2 := MustNew(Options{ICSC: 0, ICSCSet: true})
	if op2.ICSC() != 0 {
		t.Errorf("explicit zero ICSC became %v", op2.ICSC())
	}
}

func TestOptionsValidation(t *testing.T) {
	if _, err := New(Options{ICSC: 2, ICSCSet: true}); err == nil {
		t.Error("ICSC=2 accepted")
	}
	if _, err := New(Options{DefaultThreshold: 1.5}); err == nil {
		t.Error("threshold 1.5 accepted")
	}
}

func TestMatchPaperExample(t *testing.T) {
	// The headline example: Nehru in English, Hindi, Tamil and Greek
	// all match each other at the paper's operating point.
	op := newOp(t)
	names := []Text{en("Nehru"), hi("नेहरु"), ta("நேரு"), el("Νερου")}
	for i, a := range names {
		for j, b := range names {
			res, err := op.Match(a, b, 0.30)
			if err != nil {
				t.Fatalf("%v vs %v: %v", a, b, err)
			}
			if res != True {
				ex, _ := op.Explain(a, b, 0.30)
				t.Errorf("(%d,%d) %v", i, j, ex)
			}
		}
	}
}

func TestMatchRejectsDissimilar(t *testing.T) {
	op := newOp(t)
	pairs := [][2]Text{
		{en("Nehru"), en("Gandhi")},
		{en("Smith"), hi("नेहरु")},
		{en("Kumar"), el("Παπαδοπουλος")},
	}
	for _, p := range pairs {
		res, err := op.Match(p[0], p[1], 0.30)
		if err != nil {
			t.Fatal(err)
		}
		if res != False {
			t.Errorf("%v vs %v matched", p[0], p[1])
		}
	}
}

func TestMatchThresholdZeroIsExact(t *testing.T) {
	op := newOp(t)
	// Identical phoneme strings match at threshold 0...
	res, err := op.Match(en("Kathy"), en("Cathy"), 0)
	if err != nil || res != True {
		t.Errorf("Kathy/Cathy at 0 = %v, %v", res, err)
	}
	// ...but anything with nonzero distance does not.
	res, err = op.Match(en("Nehru"), en("Nero"), 0)
	if err != nil || res != False {
		t.Errorf("Nehru/Nero at 0 = %v, %v", res, err)
	}
}

func TestMatchNoResource(t *testing.T) {
	op := newOp(t)
	res, err := op.Match(en("Nehru"), Text{Value: "بهنسي", Lang: script.Arabic}, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	if res != NoResource {
		t.Errorf("Arabic match = %v, want NORESOURCE", res)
	}
}

func TestMatchInvalidThreshold(t *testing.T) {
	op := newOp(t)
	if _, err := op.Match(en("a"), en("b"), 1.5); err == nil {
		t.Error("threshold 1.5 accepted by Match")
	}
}

func TestMatchDefaultThreshold(t *testing.T) {
	op := newOp(t)
	res, err := op.Match(en("Nehru"), hi("नेहरु"), -1)
	if err != nil || res != True {
		t.Errorf("default-threshold match = %v, %v", res, err)
	}
}

func TestNeroNehruIsThresholdSensitive(t *testing.T) {
	// The paper's false-positive example: Nero may match Nehru at loose
	// thresholds but must not at tight ones.
	op := newOp(t)
	tight, err := op.Match(en("Nehru"), en("Nero"), 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if tight == True {
		t.Error("Nero matched Nehru at threshold 0.1")
	}
	loose, err := op.Match(en("Nehru"), en("Nero"), 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if loose != True {
		ex, _ := op.Explain(en("Nehru"), en("Nero"), 0.5)
		t.Errorf("Nero should match Nehru at 0.5: %v", ex)
	}
}

func TestTransformCaching(t *testing.T) {
	op := newOp(t)
	a, err := op.Transform("Nehru", script.English)
	if err != nil {
		t.Fatal(err)
	}
	b, err := op.Transform("Nehru", script.English)
	if err != nil {
		t.Fatal(err)
	}
	if !a.Equal(b) {
		t.Error("cache returned different transform")
	}
	// Cache disabled still works.
	op2 := MustNew(Options{CacheSize: -1})
	c, err := op2.Transform("Nehru", script.English)
	if err != nil || !c.Equal(a) {
		t.Errorf("uncached transform = %v, %v", c, err)
	}
}

func TestTransformCacheEviction(t *testing.T) {
	op := MustNew(Options{CacheSize: 4})
	words := []string{"Alpha", "Beta", "Gamma", "Delta", "Epsilon", "Zeta"}
	for _, w := range words {
		if _, err := op.Transform(w, script.English); err != nil {
			t.Fatal(err)
		}
	}
	// Re-transform after eviction must still be correct.
	got, err := op.Transform("Alpha", script.English)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := MustNew(Options{CacheSize: -1}).Transform("Alpha", script.English)
	if !got.Equal(want) {
		t.Error("post-eviction transform wrong")
	}
}

func TestICSCAffectsMatching(t *testing.T) {
	// sita vs ɡita differ by one cross-cluster... actually s/ɡ are in
	// different clusters; pick a pair differing only within a cluster:
	// Tamil renders Gita with an ambiguous stop, so English Gita vs
	// Tamil கீதா differ by intra-cluster edits only.
	strict := MustNew(Options{ICSC: 1, ICSCSet: true})   // Levenshtein
	soundexy := MustNew(Options{ICSC: 0, ICSCSet: true}) // free intra-cluster
	a, b := en("Gita"), ta("கீதா")
	thr := 0.15
	rs, err := strict.Match(a, b, thr)
	if err != nil {
		t.Fatal(err)
	}
	rl, err := soundexy.Match(a, b, thr)
	if err != nil {
		t.Fatal(err)
	}
	if rl != True {
		ex, _ := soundexy.Explain(a, b, thr)
		t.Errorf("ICSC=0 should match: %v", ex)
	}
	if rs == True {
		ex, _ := strict.Explain(a, b, thr)
		t.Errorf("ICSC=1 should not match at tight threshold: %v", ex)
	}
}

func TestExplain(t *testing.T) {
	op := newOp(t)
	ex, err := op.Explain(en("Nehru"), hi("नेहरु"), 0.3)
	if err != nil {
		t.Fatal(err)
	}
	if !ex.Matched {
		t.Errorf("explain says no match: %v", ex)
	}
	if ex.PhonemesA == nil || ex.PhonemesB == nil {
		t.Error("explain lacks phonemes")
	}
	if ex.Distance > ex.Bound {
		t.Error("matched but distance > bound")
	}
	s := ex.String()
	if !strings.Contains(s, "MATCH") || !strings.Contains(s, "alignment") {
		t.Errorf("explanation rendering: %s", s)
	}
	// NoResource explanation.
	ex2, err := op.Explain(en("x"), Text{Value: "ب", Lang: script.Arabic}, 0.3)
	if err != nil || !ex2.NoResource {
		t.Errorf("NoResource explain = %+v, %v", ex2, err)
	}
	if !strings.Contains(ex2.String(), "NORESOURCE") {
		t.Error("NoResource not rendered")
	}
}

func TestMatchPhonemesSmallerSideSemantics(t *testing.T) {
	// Figure 8 line 4: the bound uses the SHORTER string's length.
	op := newOp(t)
	short := phoneme.MustParse("ne")
	long := phoneme.MustParse("nehafalu")
	// bound = 0.5 * 2 = 1 edit allowed; distance is 6 -> no match even
	// though 6 < 0.5*8.
	if op.MatchPhonemes(short, long, 0.5) {
		t.Error("bound must use the shorter length")
	}
}

func TestResultString(t *testing.T) {
	if True.String() != "TRUE" || False.String() != "FALSE" || NoResource.String() != "NORESOURCE" {
		t.Error("Result strings wrong")
	}
}

func TestTextString(t *testing.T) {
	if en("Nehru").String() != "Nehru[english]" {
		t.Errorf("Text.String = %q", en("Nehru").String())
	}
}

func TestConcurrentMatch(t *testing.T) {
	op := newOp(t)
	done := make(chan error, 8)
	for g := 0; g < 8; g++ {
		go func() {
			for i := 0; i < 50; i++ {
				if _, err := op.Match(en("Nehru"), hi("नेहरु"), 0.3); err != nil {
					done <- err
					return
				}
			}
			done <- nil
		}()
	}
	for g := 0; g < 8; g++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}
