// Package core implements the LexEQUAL operator of the paper: matching
// multiscript strings by transforming them to phoneme strings (via TTP
// converters) and comparing those with a threshold-bounded clustered
// edit distance — the algorithm of Figure 8 — together with the three
// execution strategies evaluated in §5 (naive scan, q-gram filtering,
// phonetic indexing).
package core

import (
	"fmt"
	"sync"

	"lexequal/internal/editdist"
	"lexequal/internal/phoneme"
	"lexequal/internal/script"
	"lexequal/internal/soundex"
	"lexequal/internal/ttp"
)

// Text is a language-tagged string: the unit of multiscript data. The
// paper assumes Unicode attribute values tagged with their language
// (footnote 1); Text is exactly that pair.
type Text struct {
	Value string
	Lang  script.Language
}

// String renders the text with its language tag.
func (t Text) String() string { return fmt.Sprintf("%s[%s]", t.Value, t.Lang) }

// Result is the three-valued outcome of the LexEQUAL algorithm.
type Result int8

// LexEQUAL outcomes (Figure 8).
const (
	False      Result = iota // strings do not match within the threshold
	True                     // strings match within the threshold
	NoResource               // a language lacks a TTP transformation
)

func (r Result) String() string {
	switch r {
	case False:
		return "FALSE"
	case True:
		return "TRUE"
	case NoResource:
		return "NORESOURCE"
	default:
		return fmt.Sprintf("Result(%d)", int8(r))
	}
}

// Options configure an Operator.
type Options struct {
	// Registry supplies TTP converters; nil means ttp.Default().
	Registry *ttp.Registry
	// Clusters is the phoneme partition for the clustered cost model;
	// nil means phoneme.DefaultClusters().
	Clusters *phoneme.Clusters
	// ICSC is the intra-cluster substitution cost in [0,1]. The paper's
	// recommended operating point is 0.25–0.5; the zero value selects
	// 0.25 unless ICSCSet marks an explicit zero.
	ICSC float64
	// ICSCSet marks ICSC as explicitly provided (allowing the Soundex
	// limit ICSC = 0).
	ICSCSet bool
	// WeakIndel discounts insertion/deletion of glottals and schwa (see
	// editdist.Clustered). The zero value selects 0.5 unless
	// WeakIndelSet marks an explicit zero (uniform indels).
	WeakIndel    float64
	WeakIndelSet bool
	// DefaultThreshold is used by Match when the caller passes a
	// negative threshold; the zero value selects 0.30 (the knee of the
	// paper's precision-recall curves).
	DefaultThreshold float64
	// CacheSize bounds the phoneme-string cache (entries); 0 selects
	// 64k entries, negative disables caching.
	CacheSize int
}

// DefaultICSC and DefaultThreshold are the paper's recommended operating
// point (§4.3: cost 0.25–0.5, threshold 0.25–0.35); DefaultWeakIndel is
// this implementation's glottal/schwa indel discount.
const (
	DefaultICSC      = 0.25
	DefaultThreshold = 0.30
	DefaultWeakIndel = 0.5
)

// Operator is a configured LexEQUAL matcher. It is safe for concurrent
// use.
type Operator struct {
	registry  *ttp.Registry
	clusters  *phoneme.Clusters
	cost      editdist.CostModel
	encoder   *soundex.Encoder // shared projection/grouping encoder
	icsc      float64
	weak      float64
	threshold float64

	cacheCap int
	mu       sync.RWMutex
	cache    map[cacheKey]phoneme.String
}

type cacheKey struct {
	lang script.Language
	text string
}

// New builds an operator from options.
func New(opts Options) (*Operator, error) {
	reg := opts.Registry
	if reg == nil {
		reg = ttp.Default()
	}
	cl := opts.Clusters
	if cl == nil {
		cl = phoneme.DefaultClusters()
	}
	icsc := opts.ICSC
	if !opts.ICSCSet && icsc == 0 {
		icsc = DefaultICSC
	}
	weak := opts.WeakIndel
	if !opts.WeakIndelSet && weak == 0 {
		weak = DefaultWeakIndel
	}
	cost, err := editdist.NewClusteredWeak(cl, icsc, weak)
	if err != nil {
		return nil, err
	}
	thr := opts.DefaultThreshold
	if thr == 0 {
		thr = DefaultThreshold
	}
	if thr < 0 || thr > 1 {
		return nil, fmt.Errorf("core: default threshold %v outside [0,1]", thr)
	}
	cap := opts.CacheSize
	if cap == 0 {
		cap = 1 << 16
	}
	op := &Operator{
		registry:  reg,
		clusters:  cl,
		cost:      cost,
		encoder:   soundex.NewEncoder(cl),
		icsc:      icsc,
		weak:      weak,
		threshold: thr,
		cacheCap:  cap,
	}
	if cap > 0 {
		op.cache = make(map[cacheKey]phoneme.String)
	}
	return op, nil
}

// MustNew is New that panics on error, for tests and constant setups.
func MustNew(opts Options) *Operator {
	op, err := New(opts)
	if err != nil {
		panic(err)
	}
	return op
}

// Registry exposes the operator's TTP registry.
func (op *Operator) Registry() *ttp.Registry { return op.registry }

// Clusters exposes the phoneme partition in use.
func (op *Operator) Clusters() *phoneme.Clusters { return op.clusters }

// Cost exposes the cost model (for benchmarks and explain output).
func (op *Operator) Cost() editdist.CostModel { return op.cost }

// CostEqual reports whether two operators share one edit-cost model
// (built-in models are comparable values, so parameters compare by
// value). Joins verify under the left operator's model; when the models
// differ the right corpus's precomputed kernel columns are unusable and
// the join runs on the scalar kernel.
func (op *Operator) CostEqual(o *Operator) bool { return op.cost == o.cost }

// ICSC returns the intra-cluster substitution cost in use.
func (op *Operator) ICSC() float64 { return op.icsc }

// WeakIndel returns the weak-phoneme indel discount in use (0 = none).
func (op *Operator) WeakIndel() float64 { return op.weak }

// Threshold returns the default match threshold.
func (op *Operator) Threshold() float64 { return op.threshold }

// Transform converts text to its phoneme string via the registered TTP
// converter for lang, with caching: the paper's §5 optimization of
// deriving the phonemic string once per stored value rather than per
// comparison.
func (op *Operator) Transform(text string, lang script.Language) (phoneme.String, error) {
	key := cacheKey{lang, text}
	// cacheCap is immutable after New, so it gates cache use without a
	// lock; the cache map itself (reassigned wholesale on reset) is only
	// ever touched under op.mu.
	cached := op.cacheCap > 0
	if cached {
		op.mu.RLock()
		s, ok := op.cache[key]
		op.mu.RUnlock()
		if ok {
			return s, nil
		}
	}
	s, err := op.registry.Convert(text, lang)
	if err != nil {
		return nil, err
	}
	if cached {
		op.mu.Lock()
		if len(op.cache) >= op.cacheCap {
			// Wholesale reset: simple, bounded, and the workloads here
			// (repeated scans over a fixed column) repopulate quickly.
			op.cache = make(map[cacheKey]phoneme.String)
		}
		op.cache[key] = s
		op.mu.Unlock()
	}
	return s, nil
}

// TransformText is Transform over a Text value.
func (op *Operator) TransformText(t Text) (phoneme.String, error) {
	return op.Transform(t.Value, t.Lang)
}

// Match implements the LexEQUAL algorithm of Figure 8: both strings are
// transformed to phoneme strings and matched when their clustered edit
// distance is at most threshold × the shorter phonemic length. A
// negative threshold selects the operator's default. Languages without
// a TTP converter yield NoResource, not an error.
func (op *Operator) Match(a, b Text, threshold float64) (Result, error) {
	if threshold < 0 {
		threshold = op.threshold
	}
	if threshold > 1 {
		return False, fmt.Errorf("core: match threshold %v outside [0,1]", threshold)
	}
	if !op.registry.Has(a.Lang) || !op.registry.Has(b.Lang) {
		return NoResource, nil
	}
	ta, err := op.Transform(a.Value, a.Lang)
	if err != nil {
		return False, err
	}
	tb, err := op.Transform(b.Value, b.Lang)
	if err != nil {
		return False, err
	}
	if op.MatchPhonemes(ta, tb, threshold) {
		return True, nil
	}
	return False, nil
}

// MatchPhonemes applies the threshold test directly to phoneme strings:
// editdistance(ta, tb) ≤ threshold × min(|ta|, |tb|). It is the kernel
// shared by all three execution strategies.
func (op *Operator) MatchPhonemes(ta, tb phoneme.String, threshold float64) bool {
	smaller := len(ta)
	if len(tb) < smaller {
		smaller = len(tb)
	}
	bound := threshold * float64(smaller)
	_, ok := editdist.DistanceBounded(ta, tb, op.cost, bound)
	return ok
}

// MatchPhonemesScratch is MatchPhonemes with a caller-supplied DP
// scratch, the allocation-free form used by the morsel workers (each
// worker owns one scratch for its whole scan).
func (op *Operator) MatchPhonemesScratch(ta, tb phoneme.String, threshold float64, s *editdist.Scratch) bool {
	smaller := len(ta)
	if len(tb) < smaller {
		smaller = len(tb)
	}
	bound := threshold * float64(smaller)
	_, ok := editdist.DistanceBoundedScratch(ta, tb, op.cost, bound, s)
	return ok
}

// Bound returns the absolute edit-distance budget the operator allows
// for a pair of phoneme strings at the given threshold (exposed for the
// filter strategies, which need k to parameterize q-gram predicates).
func (op *Operator) Bound(ta, tb phoneme.String, threshold float64) float64 {
	smaller := len(ta)
	if len(tb) < smaller {
		smaller = len(tb)
	}
	return threshold * float64(smaller)
}

// Explanation reports why a pair matched or not.
type Explanation struct {
	A, B       Text
	PhonemesA  phoneme.String
	PhonemesB  phoneme.String
	Distance   float64
	Bound      float64
	Threshold  float64
	Matched    bool
	NoResource bool
	Alignment  editdist.Alignment
}

// String renders a human-readable explanation.
func (e Explanation) String() string {
	if e.NoResource {
		return fmt.Sprintf("%s vs %s: NORESOURCE (missing TTP converter)", e.A, e.B)
	}
	verdict := "NO MATCH"
	if e.Matched {
		verdict = "MATCH"
	}
	return fmt.Sprintf("%s /%s/ vs %s /%s/: distance %.3g vs bound %.3g (threshold %.2f) => %s\n  alignment: %s",
		e.A, e.PhonemesA, e.B, e.PhonemesB, e.Distance, e.Bound, e.Threshold, verdict, e.Alignment)
}

// Explain runs the match and returns the full evidence trail (phoneme
// strings, distance, bound, optimal alignment). Intended for the CLI
// and for debugging match quality; slower than Match.
func (op *Operator) Explain(a, b Text, threshold float64) (Explanation, error) {
	if threshold < 0 {
		threshold = op.threshold
	}
	ex := Explanation{A: a, B: b, Threshold: threshold}
	if !op.registry.Has(a.Lang) || !op.registry.Has(b.Lang) {
		ex.NoResource = true
		return ex, nil
	}
	ta, err := op.Transform(a.Value, a.Lang)
	if err != nil {
		return ex, err
	}
	tb, err := op.Transform(b.Value, b.Lang)
	if err != nil {
		return ex, err
	}
	ex.PhonemesA, ex.PhonemesB = ta, tb
	ex.Alignment = editdist.Align(ta, tb, op.cost)
	ex.Distance = ex.Alignment.Cost
	ex.Bound = op.Bound(ta, tb, threshold)
	ex.Matched = ex.Distance <= ex.Bound
	return ex, nil
}
