package core

import (
	"reflect"
	"testing"

	"lexequal/internal/phoneme"
)

// batchRows builds a row set that exercises the batch layout edge
// cases: nil rows, explicit zero-length rows, single-phoneme rows, and
// enough transformed rows that indices straddle a morsel boundary
// (255/256/257).
func batchRows(t *testing.T, op *Operator) []phoneme.String {
	t.Helper()
	var rows []phoneme.String
	rows = append(rows, nil, phoneme.String{}) // 0, 1: zero-length forms
	for _, txt := range bigCatalog() {
		if !op.Registry().Has(txt.Lang) {
			rows = append(rows, nil) // NORESOURCE rows materialize as nil
			continue
		}
		p, err := op.Transform(txt.Value, txt.Lang)
		if err != nil {
			t.Fatal(err)
		}
		rows = append(rows, p)
	}
	if len(rows) <= MorselSize+1 {
		t.Fatalf("row set too small to straddle a morsel boundary: %d", len(rows))
	}
	// Plant zero-length rows exactly at the boundary.
	rows[MorselSize-1] = nil
	rows[MorselSize] = phoneme.String{}
	return rows
}

// TestBatchRoundTrip is the batch materialization property test: every
// candidate read back through the columnar views is byte-identical to
// the row-at-a-time source, including zero-length strings and rows at
// morsel boundaries, for every (kernel, sigQ) column configuration.
func TestBatchRoundTrip(t *testing.T) {
	op := newOp(t)
	rows := batchRows(t, op)
	for _, k := range []Kernel{KernelAuto, KernelScalar, KernelBitvec} {
		for _, sigQ := range []int{0, 2, 3} {
			b := op.BuildBatch(rows, k, sigQ)
			if b.Len() != len(rows) {
				t.Fatalf("k=%v q=%d: Len = %d, want %d", k, sigQ, b.Len(), len(rows))
			}
			for i, want := range rows {
				got := b.View(i)
				if len(want) == 0 {
					if got != nil {
						t.Fatalf("k=%v q=%d row %d: zero-length row viewed as %v", k, sigQ, i, got)
					}
				} else if !reflect.DeepEqual(got, want) {
					t.Fatalf("k=%v q=%d row %d: view %v != source %v", k, sigQ, i, got, want)
				}
				if b.phon.RowLen(i) != len(want) {
					t.Fatalf("k=%v q=%d row %d: RowLen %d != %d", k, sigQ, i, b.phon.RowLen(i), len(want))
				}
				if sigQ > 0 {
					if wantPr := len(op.encoder.Project(want)); b.ProjLen(i) != wantPr {
						t.Fatalf("k=%v q=%d row %d: ProjLen %d != %d", k, sigQ, i, b.ProjLen(i), wantPr)
					}
				}
			}
			if (sigQ > 0) != (b.gsig != nil) {
				t.Fatalf("k=%v q=%d: prefilter columns present=%v", k, sigQ, b.gsig != nil)
			}
			if k == KernelScalar && b.ksig != nil {
				t.Fatalf("scalar batch built kernel signatures")
			}
		}
	}
}

// TestCorpusBatchMatchesRowAtATime pins the corpus batch to the
// row-at-a-time transforms: Phonemes(i) (a batch view) must equal the
// operator's direct transform for every row, and stay nil for skipped
// rows.
func TestCorpusBatchMatchesRowAtATime(t *testing.T) {
	op := newOp(t)
	c := buildBigCorpus(t, op)
	for i := 0; i < c.Len(); i++ {
		txt := c.Text(i)
		if !op.Registry().Has(txt.Lang) {
			if c.Phonemes(i) != nil {
				t.Fatalf("row %d: NORESOURCE row has phonemes %v", i, c.Phonemes(i))
			}
			continue
		}
		want, err := op.Transform(txt.Value, txt.Lang)
		if err != nil {
			t.Fatal(err)
		}
		if got := c.Phonemes(i); !reflect.DeepEqual(got, want) {
			t.Fatalf("row %d (%v): batch view %v != transform %v", i, txt, got, want)
		}
	}
}

// kernelChoices are the settings the determinism contract quantifies
// over.
func kernelChoices() []Kernel { return []Kernel{KernelScalar, KernelAuto, KernelBitvec} }

// TestSelectDeterministicAcrossKernels is the PR's core contract:
// results are byte-identical across every (kernel, workers) pair, raw
// Stats are identical across worker counts within a kernel, and the
// kernel-independent Canon view is identical across kernels.
func TestSelectDeterministicAcrossKernels(t *testing.T) {
	op := newOp(t)
	c := buildBigCorpus(t, op)
	queries := []Text{en("Nehru"), en("Gandhi"), en("narula"), en("kathy")}
	for _, strat := range []Strategy{Naive, QGram, Indexed} {
		for _, q := range queries {
			base, baseSt, err := c.Select(q, 0.30, nil, strat, WithKernel(KernelScalar), Parallel(1))
			if err != nil {
				t.Fatal(err)
			}
			for _, k := range kernelChoices() {
				var kernelBase Stats
				for wi, w := range []int{1, 2, 4} {
					got, st, err := c.Select(q, 0.30, nil, strat, WithKernel(k), Parallel(w))
					if err != nil {
						t.Fatal(err)
					}
					if !reflect.DeepEqual(got, base) {
						t.Errorf("%v %v kernel=%v workers=%d: results %v != scalar serial %v", strat, q, k, w, got, base)
					}
					if wi == 0 {
						kernelBase = st
					} else if st != kernelBase {
						t.Errorf("%v %v kernel=%v workers=%d: stats %+v != serial %+v", strat, q, k, w, st, kernelBase)
					}
					if st.Canon() != baseSt.Canon() {
						t.Errorf("%v %v kernel=%v workers=%d: canon stats %+v != scalar %+v", strat, q, k, w, st.Canon(), baseSt.Canon())
					}
				}
			}
		}
	}
}

// TestJoinDeterministicAcrossKernels extends the contract to joins.
func TestJoinDeterministicAcrossKernels(t *testing.T) {
	op := newOp(t)
	c := buildBigCorpus(t, op)
	for _, strat := range []Strategy{Naive, QGram, Indexed} {
		base, baseSt, err := SelfJoin(c, 0.20, false, strat, WithKernel(KernelScalar), Parallel(1))
		if err != nil {
			t.Fatal(err)
		}
		for _, k := range kernelChoices() {
			var kernelBase Stats
			for wi, w := range []int{1, 2, 4} {
				got, st, err := SelfJoin(c, 0.20, false, strat, WithKernel(k), Parallel(w))
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(got, base) {
					t.Errorf("%v kernel=%v workers=%d: pairs diverge from scalar serial", strat, k, w)
				}
				if wi == 0 {
					kernelBase = st
				} else if st != kernelBase {
					t.Errorf("%v kernel=%v workers=%d: stats %+v != serial %+v", strat, k, w, st, kernelBase)
				}
				if st.Canon() != baseSt.Canon() {
					t.Errorf("%v kernel=%v workers=%d: canon stats %+v != scalar %+v", strat, k, w, st.Canon(), baseSt.Canon())
				}
			}
		}
	}
}

// TestKernelEngagesAndCounts proves the dispatch paths through the new
// counters: the default (dyadic) model engages the bit-parallel kernel
// under Auto, and a non-dyadic model transparently falls back to scalar
// with ScalarFallbacks accounting for every verification.
func TestKernelEngagesAndCounts(t *testing.T) {
	op := newOp(t)
	c := buildBigCorpus(t, op)
	if op.ResolveKernel(KernelAuto) != KernelBitvec {
		t.Fatal("default model did not resolve to the bit-parallel kernel")
	}
	_, st, err := c.Select(en("Nehru"), 0.30, nil, Naive, WithKernel(KernelAuto))
	if err != nil {
		t.Fatal(err)
	}
	if st.BitvecOps == 0 {
		t.Errorf("bit-parallel kernel did no work: %+v", st)
	}
	_, sst, err := c.Select(en("Nehru"), 0.30, nil, Naive, WithKernel(KernelScalar))
	if err != nil {
		t.Fatal(err)
	}
	if sst.BitvecOps != 0 || sst.ScalarFallbacks != 0 {
		t.Errorf("explicit scalar kernel ticked kernel counters: %+v", sst)
	}

	// ICSC 0.3 does not quantize to a dyadic cost domain: the kernel
	// must refuse to compile and every verification must fall back.
	nop := MustNew(Options{ICSC: 0.3})
	if nop.ResolveKernel(KernelBitvec) != KernelScalar {
		t.Fatal("non-dyadic model resolved to the bit-parallel kernel")
	}
	nc, err := nop.NewCorpus(bigCatalog())
	if err != nil {
		t.Fatal(err)
	}
	want, wantSt, err := nc.Select(en("Nehru"), 0.30, nil, Naive, WithKernel(KernelScalar))
	if err != nil {
		t.Fatal(err)
	}
	got, gotSt, err := nc.Select(en("Nehru"), 0.30, nil, Naive, WithKernel(KernelBitvec))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("non-dyadic bitvec request diverges from scalar: %v vs %v", got, want)
	}
	if gotSt.BitvecOps != 0 {
		t.Errorf("non-dyadic model did bit-parallel work: %+v", gotSt)
	}
	if gotSt.ScalarFallbacks != gotSt.Candidates || gotSt.ScalarFallbacks == 0 {
		t.Errorf("fallback counter %d != candidates %d", gotSt.ScalarFallbacks, gotSt.Candidates)
	}
	if wantSt.Canon() != gotSt.Canon() {
		t.Errorf("canon stats diverge: %+v vs %+v", wantSt.Canon(), gotSt.Canon())
	}
}

// TestJoinCrossModelFallsBackToScalar pins the cross-operator safety
// gate: a join whose sides use different cost models must not consume
// the right batch's kernel signatures (they were built under the wrong
// model), so the bit-parallel path stays off even when requested.
func TestJoinCrossModelFallsBackToScalar(t *testing.T) {
	left := MustNew(Options{ICSC: 0.25})
	right := MustNew(Options{ICSC: 0.5})
	lc, err := left.NewCorpus(catalog())
	if err != nil {
		t.Fatal(err)
	}
	rc, err := right.NewCorpus(catalog())
	if err != nil {
		t.Fatal(err)
	}
	for _, strat := range []Strategy{Naive, QGram, Indexed} {
		want, _, err := Join(lc, rc, 0.30, false, strat, WithKernel(KernelScalar))
		if err != nil {
			t.Fatal(err)
		}
		got, st, err := Join(lc, rc, 0.30, false, strat, WithKernel(KernelBitvec))
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("%v: cross-model join diverges across kernels", strat)
		}
		if st.BitvecOps != 0 {
			t.Errorf("%v: cross-model join did bit-parallel work: %+v", strat, st)
		}
	}
}
