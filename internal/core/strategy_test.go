package core

import (
	"reflect"
	"testing"

	"lexequal/internal/script"
)

// catalog is the Books.com author column from the paper's Figure 1
// (restricted to languages with converters), plus a few extra names.
func catalog() []Text {
	return []Text{
		en("Descartes"), // 0
		ta("நேரு"),      // 1  Nehru (Tamil)
		el("Σαρρη"),     // 2  Sarri
		en("Nero"),      // 3
		en("Nehru"),     // 4
		hi("नेहरु"),     // 5  Nehru (Hindi)
		en("Gandhi"),    // 6
		hi("गांधी"),     // 7  Gandhi (Hindi)
		ta("காந்தி"),    // 8  Gandhi (Tamil)
		en("Kathy"),     // 9
		en("Cathy"),     // 10
		{Value: "بهنسي", Lang: script.Arabic}, // 11: NORESOURCE row
	}
}

func buildCorpus(t *testing.T, op *Operator) *Corpus {
	t.Helper()
	c, err := op.NewCorpus(catalog())
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestCorpusBasics(t *testing.T) {
	op := newOp(t)
	c := buildCorpus(t, op)
	if c.Len() != 12 {
		t.Errorf("Len = %d", c.Len())
	}
	if got := c.Skipped(); len(got) != 1 || got[0] != 11 {
		t.Errorf("Skipped = %v", got)
	}
	if c.Phonemes(11) != nil {
		t.Error("NORESOURCE row has phonemes")
	}
	if c.Phonemes(4) == nil {
		t.Error("English row lacks phonemes")
	}
	if c.Q() != DefaultQ {
		t.Errorf("Q = %d", c.Q())
	}
	if c.Text(3).Value != "Nero" {
		t.Errorf("Text(3) = %v", c.Text(3))
	}
}

func TestCorpusRejectsBadQ(t *testing.T) {
	op := newOp(t)
	if _, err := op.NewCorpusQ(catalog(), 1); err == nil {
		t.Error("q=1 accepted")
	}
}

func TestSelectFindsCrossScriptMatches(t *testing.T) {
	op := newOp(t)
	c := buildCorpus(t, op)
	got, st, err := c.Select(en("Nehru"), 0.30, nil, Naive)
	if err != nil {
		t.Fatal(err)
	}
	want := map[int]bool{1: true, 4: true, 5: true} // Tamil, English, Hindi Nehru
	for _, i := range got {
		if !want[i] && i != 3 { // Nero may appear at loose thresholds (paper §1)
			t.Errorf("unexpected match: %v", c.Text(i))
		}
	}
	for i := range want {
		if !containsInt(got, i) {
			ex, _ := op.Explain(en("Nehru"), c.Text(i), 0.30)
			t.Errorf("missing match %v: %v", c.Text(i), ex)
		}
	}
	if st.Matches != len(got) || st.Rows == 0 {
		t.Errorf("stats inconsistent: %+v", st)
	}
}

func containsInt(xs []int, x int) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}

func TestSelectLanguageFilter(t *testing.T) {
	op := newOp(t)
	c := buildCorpus(t, op)
	langs := NewLangSet(script.Hindi, script.Tamil)
	got, _, err := c.Select(en("Nehru"), 0.30, langs, Naive)
	if err != nil {
		t.Fatal(err)
	}
	for _, i := range got {
		if l := c.Text(i).Lang; l != script.Hindi && l != script.Tamil {
			t.Errorf("language filter leaked %v", c.Text(i))
		}
	}
	if !containsInt(got, 5) || !containsInt(got, 1) {
		t.Errorf("filtered select lost matches: %v", got)
	}
	// Wildcard set.
	if !NewLangSet().Contains(script.Greek) {
		t.Error("empty NewLangSet is not the wildcard")
	}
	if langs.Contains(script.Greek) {
		t.Error("explicit set contains unlisted language")
	}
}

func TestQGramSelectEquivalentToNaive(t *testing.T) {
	op := newOp(t)
	c := buildCorpus(t, op)
	for _, query := range []Text{en("Nehru"), en("Gandhi"), en("Kathy"), el("Σαρρη")} {
		for _, thr := range []float64{0.1, 0.25, 0.3, 0.4} {
			naive, _, err := c.Select(query, thr, nil, Naive)
			if err != nil {
				t.Fatal(err)
			}
			qg, stq, err := c.Select(query, thr, nil, QGram)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(naive, qg) {
				t.Errorf("%v @%v: naive %v != qgram %v", query, thr, naive, qg)
			}
			if stq.Candidates > c.Len() {
				t.Errorf("qgram stats: %+v", stq)
			}
		}
	}
}

func TestQGramPrunesCandidates(t *testing.T) {
	op := newOp(t)
	c := buildCorpus(t, op)
	_, stn, _ := c.Select(en("Nehru"), 0.25, nil, Naive)
	_, stq, _ := c.Select(en("Nehru"), 0.25, nil, QGram)
	if stq.Candidates >= stn.Rows {
		t.Errorf("q-gram filter pruned nothing: %d rows vs %d qgram candidates", stn.Rows, stq.Candidates)
	}
	// The q-gram plan's exact positional filter is at least as tight as
	// the naive plan's Bloom signature prefilter.
	if stq.Candidates > stn.Candidates {
		t.Errorf("qgram candidates %d > sig-prefiltered naive candidates %d", stq.Candidates, stn.Candidates)
	}
}

func TestIndexedSelectSubsetOfNaive(t *testing.T) {
	op := newOp(t)
	c := buildCorpus(t, op)
	for _, query := range []Text{en("Nehru"), en("Gandhi"), en("Cathy")} {
		naive, _, err := c.Select(query, 0.3, nil, Naive)
		if err != nil {
			t.Fatal(err)
		}
		idx, _, err := c.Select(query, 0.3, nil, Indexed)
		if err != nil {
			t.Fatal(err)
		}
		for _, i := range idx {
			if !containsInt(naive, i) {
				t.Errorf("%v: indexed produced non-match %v", query, c.Text(i))
			}
		}
	}
}

func TestIndexedSelectFindsSameSignatureMatches(t *testing.T) {
	op := newOp(t)
	c := buildCorpus(t, op)
	// Kathy/Cathy share identical phonemes, hence identical signatures.
	got, _, err := c.Select(en("Kathy"), 0.2, nil, Indexed)
	if err != nil {
		t.Fatal(err)
	}
	if !containsInt(got, 9) || !containsInt(got, 10) {
		t.Errorf("indexed select missed identical-phoneme rows: %v", got)
	}
}

func TestSelectInvalidThreshold(t *testing.T) {
	op := newOp(t)
	c := buildCorpus(t, op)
	if _, _, err := c.Select(en("x"), 1.5, nil, Naive); err == nil {
		t.Error("threshold 1.5 accepted")
	}
}

func TestJoinStrategies(t *testing.T) {
	op := newOp(t)
	c := buildCorpus(t, op)
	naive, stn, err := SelfJoin(c, 0.30, true, Naive)
	if err != nil {
		t.Fatal(err)
	}
	if stn.Matches != len(naive) {
		t.Errorf("join stats inconsistent: %+v vs %d", stn, len(naive))
	}
	// The cross-language Nehru pairs and Gandhi pairs must be found.
	wantPairs := []Pair{{1, 4}, {1, 5}, {4, 5}, {6, 7}, {6, 8}, {7, 8}}
	for _, w := range wantPairs {
		if !containsPair(naive, w) {
			t.Errorf("naive join missing %v (%v ~ %v)", w, c.Text(w.Left), c.Text(w.Right))
		}
	}
	// Same-language pairs are excluded by the language predicate.
	for _, p := range naive {
		if c.Text(p.Left).Lang == c.Text(p.Right).Lang {
			t.Errorf("join kept same-language pair %v", p)
		}
	}
	// Q-gram join is exactly equivalent.
	qg, _, err := SelfJoin(c, 0.30, true, QGram)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(naive, qg) {
		t.Errorf("qgram join differs:\nnaive %v\nqgram %v", naive, qg)
	}
	// Indexed join is a subset.
	idx, _, err := SelfJoin(c, 0.30, true, Indexed)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range idx {
		if !containsPair(naive, p) {
			t.Errorf("indexed join invented pair %v", p)
		}
	}
}

func containsPair(ps []Pair, p Pair) bool {
	for _, q := range ps {
		if q == p {
			return true
		}
	}
	return false
}

func TestJoinWithoutLanguagePredicate(t *testing.T) {
	op := newOp(t)
	c := buildCorpus(t, op)
	pairs, _, err := SelfJoin(c, 0.0, false, Naive)
	if err != nil {
		t.Fatal(err)
	}
	// Kathy/Cathy are both English and identical phonemically.
	if !containsPair(pairs, Pair{9, 10}) {
		t.Error("join without language predicate missed Kathy/Cathy")
	}
}

func TestParseStrategy(t *testing.T) {
	for in, want := range map[string]Strategy{
		"": Naive, "naive": Naive, "udf": Naive,
		"qgram": QGram, "qgrams": QGram,
		"indexed": Indexed, "index": Indexed, "phonetic": Indexed,
	} {
		got, err := ParseStrategy(in)
		if err != nil || got != want {
			t.Errorf("ParseStrategy(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := ParseStrategy("quantum"); err == nil {
		t.Error("unknown strategy accepted")
	}
	if Naive.String() != "naive" || QGram.String() != "qgram" || Indexed.String() != "indexed" {
		t.Error("strategy names wrong")
	}
}

func TestNoResourceRowsNeverMatch(t *testing.T) {
	op := newOp(t)
	c := buildCorpus(t, op)
	for _, strat := range []Strategy{Naive, QGram, Indexed} {
		got, _, err := c.Select(en("Nehru"), 1.0, nil, strat)
		if err != nil {
			t.Fatal(err)
		}
		if containsInt(got, 11) {
			t.Errorf("%v matched the NORESOURCE row", strat)
		}
	}
}

// weakCatalog is a lexicon dominated by glottal-bearing names. The
// signature projection drops glottals, and the default cluster set
// places them with dorsal obstruents, so a cheap ICSC substitution like
// /ha/~/ka/ moves the projection by a full unit for a fraction of the
// budget — the exact surface the q-gram strategy's weak-count slack
// (Operator.SigBudget) exists for.
func weakCatalog() []Text {
	return []Text{
		en("Ha"),    // 0
		en("Ka"),    // 1
		en("Hahn"),  // 2
		en("Kahn"),  // 3
		en("Khan"),  // 4
		en("Han"),   // 5
		en("Aha"),   // 6
		en("Hoho"),  // 7
		en("Koko"),  // 8
		en("Oh"),    // 9
		en("Nehru"), // 10
		en("Neru"),  // 11
		en("Kathy"), // 12
		en("Cathy"), // 13
	}
}

// TestQGramEqualsNaiveOnWeakLexicon is the budget-slack regression: the
// unslacked strategy budget falsely dismissed pairs whose cheap
// glottal-substitution edits shift the projection (e.g. /ha/~/ka/),
// making StrategyQGram diverge from StrategyNaive. The two strategies
// must agree exactly on selects and self-joins over the weak lexicon.
func TestQGramEqualsNaiveOnWeakLexicon(t *testing.T) {
	op := newOp(t)
	c, err := op.NewCorpus(weakCatalog())
	if err != nil {
		t.Fatal(err)
	}
	for _, query := range weakCatalog() {
		for _, thr := range []float64{0.1, 0.2, 0.3, 0.4, 0.5} {
			naive, _, err := c.Select(query, thr, nil, Naive)
			if err != nil {
				t.Fatal(err)
			}
			qg, _, err := c.Select(query, thr, nil, QGram)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(naive, qg) {
				t.Errorf("%v @%v: naive %v != qgram %v", query, thr, naive, qg)
			}
		}
	}
	for _, thr := range []float64{0.2, 0.3, 0.5} {
		nj, _, err := SelfJoin(c, thr, false, Naive)
		if err != nil {
			t.Fatal(err)
		}
		qj, _, err := SelfJoin(c, thr, false, QGram)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(nj, qj) {
			t.Errorf("self-join @%v: naive %v != qgram %v", thr, nj, qj)
		}
	}
	// The canonical hazard pair: /ka/ must find /ha/ under both plans
	// (distance is one intra-cluster substitution, well within 0.30×2).
	got, _, err := c.Select(en("Ka"), 0.30, nil, QGram)
	if err != nil {
		t.Fatal(err)
	}
	if !containsInt(got, 0) {
		t.Error("qgram strategy falsely dismissed /ha/ for query /ka/")
	}
}
