package core

import (
	"fmt"
	"sort"

	"lexequal/internal/phoneme"
	"lexequal/internal/qgram"
	"lexequal/internal/script"
	"lexequal/internal/soundex"
)

// Strategy names the three execution plans of §5.
type Strategy uint8

// Execution strategies for LexEQUAL selections and joins.
const (
	Naive   Strategy = iota // call the UDF on every row (Table 1)
	QGram                   // q-gram filters, then the UDF (Table 2)
	Indexed                 // phonetic index probe, then the UDF (Table 3)
)

func (s Strategy) String() string {
	switch s {
	case Naive:
		return "naive"
	case QGram:
		return "qgram"
	case Indexed:
		return "indexed"
	default:
		return fmt.Sprintf("Strategy(%d)", uint8(s))
	}
}

// ParseStrategy resolves a strategy name from CLI/SQL settings.
func ParseStrategy(s string) (Strategy, error) {
	switch s {
	case "", "naive", "udf":
		return Naive, nil
	case "qgram", "qgrams":
		return QGram, nil
	case "indexed", "index", "phonetic":
		return Indexed, nil
	default:
		return Naive, fmt.Errorf("core: unknown strategy %q", s)
	}
}

// LangSet filters match targets by language: the INLANGUAGES clause.
// A nil LangSet is the * wildcard (all languages).
type LangSet map[script.Language]bool

// NewLangSet builds a set from a list; an empty list yields the
// wildcard nil set.
func NewLangSet(langs ...script.Language) LangSet {
	if len(langs) == 0 {
		return nil
	}
	s := make(LangSet, len(langs))
	for _, l := range langs {
		s[l] = true
	}
	return s
}

// Contains reports whether lang passes the filter.
func (s LangSet) Contains(lang script.Language) bool { return s == nil || s[lang] }

// Stats counts the work a strategy performed, for the efficiency
// experiments: how many rows the cheap phase admitted as candidates and
// how many survived UDF verification.
type Stats struct {
	Rows       int // rows considered (after the language filter)
	Candidates int // rows reaching the edit-distance verification
	Matches    int // rows in the final result
}

// Corpus is a queryable collection of multiscript texts with the
// auxiliary structures of §5 built once: per-row phoneme strings
// (cached transforms), the positional q-gram inverted index, and the
// grouped-phoneme-identifier hash. DefaultQ is used unless overridden.
type Corpus struct {
	op      *Operator
	q       int
	texts   []Text
	phon    []phoneme.String
	proj    []phoneme.String // signature projections (see soundex.Encoder.Project)
	skipped []int            // rows whose language had no converter (NORESOURCE rows)

	grams   map[string][]posting // q-gram inverted index
	grouped map[soundex.GroupedID][]int
	encoder *soundex.Encoder
}

type posting struct {
	row int
	pos int
}

// DefaultQ is the gram length used by the paper's experiments.
const DefaultQ = 3

// NewCorpus transforms every text once and builds the q-gram and
// phonetic indexes. Rows in languages without a TTP converter are
// retained but never match (they are the NORESOURCE rows); their
// indices are reported by Skipped.
func (op *Operator) NewCorpus(texts []Text) (*Corpus, error) {
	return op.NewCorpusQ(texts, DefaultQ)
}

// NewCorpusQ is NewCorpus with an explicit q-gram length (q >= 2).
func (op *Operator) NewCorpusQ(texts []Text, q int) (*Corpus, error) {
	if q < 2 {
		return nil, fmt.Errorf("core: q must be >= 2, got %d", q)
	}
	c := &Corpus{
		op:      op,
		q:       q,
		texts:   texts,
		phon:    make([]phoneme.String, len(texts)),
		proj:    make([]phoneme.String, len(texts)),
		grams:   make(map[string][]posting),
		grouped: make(map[soundex.GroupedID][]int),
		encoder: soundex.NewEncoder(op.clusters),
	}
	for i, t := range texts {
		if !op.registry.Has(t.Lang) {
			c.skipped = append(c.skipped, i)
			continue
		}
		p, err := op.Transform(t.Value, t.Lang)
		if err != nil {
			return nil, fmt.Errorf("core: row %d (%s): %w", i, t, err)
		}
		c.phon[i] = p
		// Q-grams are extracted over the signature projection of the
		// phoneme string (glottals dropped, phonemes folded to their
		// cluster representatives). Under the clustered cost model the
		// cheap edits — intra-cluster substitutions and glottal indels —
		// leave the projection untouched, and every edit that does
		// change it costs at least one full unit, so an edit-cost
		// budget of k admits at most k projected-space unit edits: the
		// exact premise of the three q-gram filters.
		c.proj[i] = c.encoder.Project(p)
		for _, g := range qgram.Extract(c.proj[i], q) {
			key := g.Key()
			c.grams[key] = append(c.grams[key], posting{row: i, pos: g.Pos})
		}
		c.grouped[c.encoder.Encode(p)] = append(c.grouped[c.encoder.Encode(p)], i)
	}
	return c, nil
}

// sigBudget converts a clustered-cost bound into a sound budget on
// projected-space unit edits. By construction (the cost model's
// discounted-indel set equals the projection's drop set), every edit
// that changes the signature projection costs at least 1, so the budget
// is the bound itself.
func (c *Corpus) sigBudget(bound float64) float64 {
	return bound
}

// Len returns the number of rows.
func (c *Corpus) Len() int { return len(c.texts) }

// Text returns row i's text.
func (c *Corpus) Text(i int) Text { return c.texts[i] }

// Phonemes returns row i's phoneme string (nil for NORESOURCE rows).
func (c *Corpus) Phonemes(i int) phoneme.String { return c.phon[i] }

// Skipped lists rows whose language had no TTP converter.
func (c *Corpus) Skipped() []int { return c.skipped }

// Q returns the corpus's q-gram length.
func (c *Corpus) Q() int { return c.q }

// Select finds the rows matching query at the threshold, restricted to
// langs, using the given strategy. All strategies return identical
// results except Indexed, which may have false dismissals (§5.3).
func (c *Corpus) Select(query Text, threshold float64, langs LangSet, strat Strategy) ([]int, Stats, error) {
	if threshold < 0 {
		threshold = c.op.threshold
	}
	if threshold > 1 {
		return nil, Stats{}, fmt.Errorf("core: match threshold %v outside [0,1]", threshold)
	}
	qp, err := c.op.Transform(query.Value, query.Lang)
	if err != nil {
		return nil, Stats{}, err
	}
	switch strat {
	case Naive:
		return c.selectNaive(qp, threshold, langs)
	case QGram:
		return c.selectQGram(qp, threshold, langs)
	case Indexed:
		return c.selectIndexed(qp, threshold, langs)
	default:
		return nil, Stats{}, fmt.Errorf("core: unknown strategy %v", strat)
	}
}

func (c *Corpus) selectNaive(qp phoneme.String, e float64, langs LangSet) ([]int, Stats, error) {
	var out []int
	var st Stats
	for i := range c.texts {
		if c.phon[i] == nil || !langs.Contains(c.texts[i].Lang) {
			continue
		}
		st.Rows++
		st.Candidates++
		if c.op.MatchPhonemes(qp, c.phon[i], e) {
			out = append(out, i)
		}
	}
	st.Matches = len(out)
	return out, st, nil
}

// selectQGram implements the Figure 14 plan: the edit-distance budget is
// k = e·|query| (the paper uses the query length in all three filter
// predicates), the inverted index supplies position-filtered gram match
// counts, and candidates passing the length and count filters are
// verified with the UDF.
func (c *Corpus) selectQGram(qp phoneme.String, e float64, langs LangSet) ([]int, Stats, error) {
	var st Stats
	k := c.sigBudget(e * float64(len(qp)))
	qproj := c.encoder.Project(qp)
	counts := make(map[int]int)
	for _, g := range qgram.Extract(qproj, c.q) {
		for _, p := range c.grams[g.Key()] {
			if qgram.PositionOK(g.Pos, p.pos, k) {
				counts[p.row]++
			}
		}
	}
	var out []int
	for i := range c.texts {
		if c.phon[i] == nil || !langs.Contains(c.texts[i].Lang) {
			continue
		}
		st.Rows++
		if !qgram.LengthOK(len(qproj), len(c.proj[i]), k) {
			continue
		}
		need := qgram.CountThreshold(len(qproj), len(c.proj[i]), c.q, k)
		if need > 0 && counts[i] < need {
			continue
		}
		st.Candidates++
		if c.op.MatchPhonemes(qp, c.phon[i], e) {
			out = append(out, i)
		}
	}
	st.Matches = len(out)
	return out, st, nil
}

// selectIndexed implements the Figure 15 plan: probe the grouped-
// phoneme-identifier index and verify the (few) rows sharing the
// query's cluster signature. Fast, with false dismissals for matches
// whose edits cross cluster boundaries.
func (c *Corpus) selectIndexed(qp phoneme.String, e float64, langs LangSet) ([]int, Stats, error) {
	var st Stats
	var out []int
	for _, i := range c.grouped[c.encoder.Encode(qp)] {
		if c.phon[i] == nil || !langs.Contains(c.texts[i].Lang) {
			continue
		}
		st.Rows++
		st.Candidates++
		if c.op.MatchPhonemes(qp, c.phon[i], e) {
			out = append(out, i)
		}
	}
	st.Matches = len(out)
	return out, st, nil
}

// Pair is one result of a join: row indexes into the left and right
// corpora.
type Pair struct {
	Left, Right int
}

// Join finds all cross-corpus pairs matching at the threshold under the
// strategy, optionally requiring different languages (the paper's
// equi-join example restricts B1.Language <> B2.Language).
func Join(left, right *Corpus, threshold float64, requireDifferentLang bool, strat Strategy) ([]Pair, Stats, error) {
	if threshold < 0 {
		threshold = left.op.threshold
	}
	if threshold > 1 {
		return nil, Stats{}, fmt.Errorf("core: match threshold %v outside [0,1]", threshold)
	}
	var out []Pair
	var st Stats
	admit := func(l, r int) {
		st.Candidates++
		if left.op.MatchPhonemes(left.phon[l], right.phon[r], threshold) {
			out = append(out, Pair{Left: l, Right: r})
		}
	}
	switch strat {
	case Naive:
		for l := range left.texts {
			if left.phon[l] == nil {
				continue
			}
			for r := range right.texts {
				if right.phon[r] == nil {
					continue
				}
				if requireDifferentLang && left.texts[l].Lang == right.texts[r].Lang {
					continue
				}
				st.Rows++
				admit(l, r)
			}
		}
	case QGram:
		for l := range left.texts {
			if left.phon[l] == nil {
				continue
			}
			lp := left.phon[l]
			lproj := left.proj[l]
			k := right.sigBudget(threshold * float64(len(lp)))
			counts := make(map[int]int)
			for _, g := range qgram.Extract(lproj, right.q) {
				for _, p := range right.grams[g.Key()] {
					if qgram.PositionOK(g.Pos, p.pos, k) {
						counts[p.row]++
					}
				}
			}
			for r, cnt := range counts {
				if right.phon[r] == nil {
					continue
				}
				if requireDifferentLang && left.texts[l].Lang == right.texts[r].Lang {
					continue
				}
				st.Rows++
				if !qgram.LengthOK(len(lproj), len(right.proj[r]), k) {
					continue
				}
				need := qgram.CountThreshold(len(lproj), len(right.proj[r]), right.q, k)
				if need > 0 && cnt < need {
					continue
				}
				admit(l, r)
			}
		}
	case Indexed:
		for l := range left.texts {
			if left.phon[l] == nil {
				continue
			}
			id := right.encoder.Encode(left.phon[l])
			for _, r := range right.grouped[id] {
				if right.phon[r] == nil {
					continue
				}
				if requireDifferentLang && left.texts[l].Lang == right.texts[r].Lang {
					continue
				}
				st.Rows++
				admit(l, r)
			}
		}
	default:
		return nil, Stats{}, fmt.Errorf("core: unknown strategy %v", strat)
	}
	// The q-gram strategy discovers candidates in hash order; normalize
	// so all strategies return deterministically ordered results.
	sort.Slice(out, func(i, j int) bool {
		if out[i].Left != out[j].Left {
			return out[i].Left < out[j].Left
		}
		return out[i].Right < out[j].Right
	})
	st.Matches = len(out)
	return out, st, nil
}

// SelfJoin runs Join of a corpus with itself, returning each unordered
// pair once (Left < Right).
func SelfJoin(c *Corpus, threshold float64, requireDifferentLang bool, strat Strategy) ([]Pair, Stats, error) {
	pairs, st, err := Join(c, c, threshold, requireDifferentLang, strat)
	if err != nil {
		return nil, st, err
	}
	out := pairs[:0]
	for _, p := range pairs {
		if p.Left < p.Right {
			out = append(out, p)
		}
	}
	st.Matches = len(out)
	return out, st, nil
}
