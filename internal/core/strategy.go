package core

import (
	"fmt"
	"math"
	"sort"

	"lexequal/internal/editdist"
	"lexequal/internal/phoneme"
	"lexequal/internal/qgram"
	"lexequal/internal/script"
	"lexequal/internal/soundex"
)

// Strategy names the three execution plans of §5.
type Strategy uint8

// Execution strategies for LexEQUAL selections and joins.
const (
	Naive   Strategy = iota // call the UDF on every row (Table 1)
	QGram                   // q-gram filters, then the UDF (Table 2)
	Indexed                 // phonetic index probe, then the UDF (Table 3)
)

func (s Strategy) String() string {
	switch s {
	case Naive:
		return "naive"
	case QGram:
		return "qgram"
	case Indexed:
		return "indexed"
	default:
		return fmt.Sprintf("Strategy(%d)", uint8(s))
	}
}

// ParseStrategy resolves a strategy name from CLI/SQL settings.
func ParseStrategy(s string) (Strategy, error) {
	switch s {
	case "", "naive", "udf":
		return Naive, nil
	case "qgram", "qgrams":
		return QGram, nil
	case "indexed", "index", "phonetic":
		return Indexed, nil
	default:
		return Naive, fmt.Errorf("core: unknown strategy %q", s)
	}
}

// LangSet filters match targets by language: the INLANGUAGES clause.
// A nil LangSet is the * wildcard (all languages).
type LangSet map[script.Language]bool

// NewLangSet builds a set from a list; an empty list yields the
// wildcard nil set.
func NewLangSet(langs ...script.Language) LangSet {
	if len(langs) == 0 {
		return nil
	}
	s := make(LangSet, len(langs))
	for _, l := range langs {
		s[l] = true
	}
	return s
}

// Contains reports whether lang passes the filter.
func (s LangSet) Contains(lang script.Language) bool { return s == nil || s[lang] }

// Stats counts the work a strategy performed, for the efficiency
// experiments: how many rows the cheap phase admitted as candidates,
// how many each filter pruned, how much DP work verification cost, and
// how many survived. All fields are order-independent sums, so a
// parallel execution reports totals byte-identical to the serial one.
type Stats struct {
	Rows       int // rows considered (after the language filter)
	Candidates int // rows reaching the edit-distance verification
	Matches    int // rows in the final result

	PrunedLength int   // candidates dismissed by the q-gram length filter
	PrunedCount  int   // candidates dismissed by the q-gram count filter
	PrunedSig    int   // candidates dismissed by the batched signature prefilter
	DPCells      int64 // scalar DP cells evaluated during verification
	SigCacheHits int   // join probes served from the corpus signature cache

	BitvecOps       int64 // 64-cell word operations of the bit-parallel kernel
	ScalarFallbacks int   // verifications the requested kernel deferred to the scalar DP
	BatchesBuilt    int   // columnar candidate batches materialized
}

// Add accumulates another Stats into s (used to merge per-worker stats
// and to aggregate across queries).
func (s *Stats) Add(o Stats) {
	s.Rows += o.Rows
	s.Candidates += o.Candidates
	s.Matches += o.Matches
	s.PrunedLength += o.PrunedLength
	s.PrunedCount += o.PrunedCount
	s.PrunedSig += o.PrunedSig
	s.DPCells += o.DPCells
	s.SigCacheHits += o.SigCacheHits
	s.BitvecOps += o.BitvecOps
	s.ScalarFallbacks += o.ScalarFallbacks
	s.BatchesBuilt += o.BatchesBuilt
}

// Canon returns the kernel-independent view of the stats: the work
// counters that legitimately differ between the scalar and bit-parallel
// kernels (DP cells, word ops, fallback dispatches) are masked, and
// everything that must be byte-identical across every (kernel, workers)
// pair — row, prune, candidate and match accounting — is kept. The
// determinism tests and the bench audit compare Canon views across
// kernels and raw Stats across worker counts.
func (s Stats) Canon() Stats {
	s.DPCells = 0
	s.BitvecOps = 0
	s.ScalarFallbacks = 0
	return s
}

// Corpus is a queryable collection of multiscript texts with the
// auxiliary structures of §5 built once: the flat columnar batch of
// phoneme strings (cached transforms plus the per-row kernel and
// prefilter columns), the positional q-gram inverted index, and the
// grouped-phoneme-identifier hash. DefaultQ is used unless overridden.
type Corpus struct {
	op      *Operator
	q       int
	texts   []Text
	batch   Batch  // columnar phoneme rows + kernel/prefilter columns
	proj    Column // signature projections (see soundex.Encoder.Project)
	skipped []int  // rows whose language had no converter (NORESOURCE rows)

	grams   map[string][]posting // q-gram inverted index
	grouped map[soundex.GroupedID][]int
	encoder *soundex.Encoder

	// sigGrams caches each row's positional q-gram signature (key +
	// position over the projection), extracted once at corpus build so
	// join probes never re-extract or re-render gram keys per pair.
	sigGrams [][]sigGram
}

type posting struct {
	row int
	pos int
}

// sigGram is one cached positional q-gram of a row's signature
// projection: the rendered key (as stored in the inverted index) and
// its 1-based position.
type sigGram struct {
	key string
	pos int
}

// DefaultQ is the gram length used by the paper's experiments.
const DefaultQ = 3

// NewCorpus transforms every text once and builds the q-gram and
// phonetic indexes. Rows in languages without a TTP converter are
// retained but never match (they are the NORESOURCE rows); their
// indices are reported by Skipped.
func (op *Operator) NewCorpus(texts []Text) (*Corpus, error) {
	return op.NewCorpusQ(texts, DefaultQ)
}

// NewCorpusQ is NewCorpus with an explicit q-gram length (q >= 2).
func (op *Operator) NewCorpusQ(texts []Text, q int) (*Corpus, error) {
	if q < 2 {
		return nil, fmt.Errorf("core: q must be >= 2, got %d", q)
	}
	c := &Corpus{
		op:       op,
		q:        q,
		texts:    texts,
		grams:    make(map[string][]posting),
		grouped:  make(map[soundex.GroupedID][]int),
		encoder:  op.encoder,
		sigGrams: make([][]sigGram, len(texts)),
	}
	// The columnar batch is materialized once per corpus with every
	// column the strategies can consume — transforms, weak counts, kernel
	// signatures (when the cost model bit-parallelizes), projected
	// lengths and Bloom signatures — so scans at any kernel setting share
	// the same read-only batch and the per-candidate hot path never makes
	// an interface call or allocates.
	kern, _ := editdist.NewBitvec(op.cost)
	c.batch.wk = make([]int32, len(texts))
	if kern != nil {
		c.batch.ksig = make([]uint64, len(texts))
	}
	c.batch.plen = make([]int32, len(texts))
	c.batch.gsig = make([]uint64, len(texts))
	for i, t := range texts {
		if !op.registry.Has(t.Lang) {
			c.skipped = append(c.skipped, i)
			c.batch.phon.Append(nil)
			c.proj.Append(nil)
			continue
		}
		p, err := op.Transform(t.Value, t.Lang)
		if err != nil {
			return nil, fmt.Errorf("core: row %d (%s): %w", i, t, err)
		}
		c.batch.phon.Append(p)
		c.batch.wk[i] = int32(editdist.WeakCount(p))
		if kern != nil {
			c.batch.ksig[i] = kern.CandSig(p)
		}
		// Q-grams are extracted over the signature projection of the
		// phoneme string (glottals dropped, phonemes folded to their
		// cluster representatives). Under the clustered cost model the
		// cheap edits — intra-cluster substitutions and glottal indels —
		// leave the projection untouched, and every edit that does
		// change it costs at least one full unit, so an edit-cost
		// budget of k admits at most k projected-space unit edits: the
		// exact premise of the three q-gram filters.
		pr := c.encoder.Project(p)
		c.proj.Append(pr)
		c.batch.plen[i] = int32(len(pr))
		c.batch.gsig[i] = qgram.Signature(pr, q)
		grams := qgram.Extract(pr, q)
		c.sigGrams[i] = make([]sigGram, len(grams))
		for gi, g := range grams {
			key := g.Key()
			c.grams[key] = append(c.grams[key], posting{row: i, pos: g.Pos})
			c.sigGrams[i][gi] = sigGram{key: key, pos: g.Pos}
		}
		c.grouped[c.encoder.Encode(p)] = append(c.grouped[c.encoder.Encode(p)], i)
	}
	return c, nil
}

// SigBudget converts a clustered-cost bound into a sound budget on
// projected-space unit edits for one candidate pair; weak is the total
// weak-phoneme count of the two strings. Most projection-changing edits
// cost at least one full unit (the cost model's discounted-indel set
// equals the projection's drop set), but the default cluster set places
// glottals in the same cluster as dorsal obstruents, so an ICSC
// substitution between a glottal and a strong clustermate changes the
// projection for less than a unit — the /ha/~/ka/ pair SigFilter's doc
// walks through. Each such edit consumes a distinct weak occurrence of
// one of the two strings, so bound + weak is sound (the same slack
// SigFilter applies); independently, SigBudgetCap bounds the budget
// without reference to the candidate. The tighter of the two applies.
func (op *Operator) SigBudget(bound float64, weak int) float64 {
	b := bound + float64(weak)
	if c := op.SigBudgetCap(bound); c < b {
		b = c
	}
	return b
}

// SigBudgetCap is the candidate-independent ceiling on the projected-
// space edit budget: every edit that changes the signature projection
// costs at least the model's floor (cross-cluster substitutions and
// strong indels cost 1, glottal↔strong intra-cluster substitutions cost
// ICSC; discounted glottal indels never change the projection because
// the projection drops glottals), so a pair within clustered cost
// `bound` admits at most bound/floor projected unit edits. An ICSC of
// zero prices some projection-changing edits free, so no finite cap
// exists there. Plans use the cap where the candidate (and hence its
// weak count) is not yet in hand: probe-time pruning and the decision
// whether zero-gram candidates must still be swept.
func (op *Operator) SigBudgetCap(bound float64) float64 {
	switch cm := op.cost.(type) {
	case editdist.Clustered:
		if cm.ICSC >= 1 {
			return bound
		}
		if cm.ICSC == 0 {
			return math.Inf(1)
		}
		if c := bound / cm.ICSC; c < 1e12 {
			return c
		}
		// An absurdly small ICSC yields a quotient with no filtering
		// power (and unsafe to truncate to int); treat it as unbounded.
		return math.Inf(1)
	default:
		// Unit charges 1 per projection-changing edit; other models keep
		// the historical bare bound (their floor is not analyzable here).
		return bound
	}
}

// Len returns the number of rows.
func (c *Corpus) Len() int { return len(c.texts) }

// Text returns row i's text.
func (c *Corpus) Text(i int) Text { return c.texts[i] }

// Phonemes returns row i's phoneme string (nil for NORESOURCE rows).
// The view aliases the corpus batch buffer and must be treated as
// read-only.
func (c *Corpus) Phonemes(i int) phoneme.String { return c.batch.phon.View(i) }

// Batch exposes the corpus's columnar candidate batch (read-only).
func (c *Corpus) Batch() *Batch { return &c.batch }

// Skipped lists rows whose language had no TTP converter.
func (c *Corpus) Skipped() []int { return c.skipped }

// Q returns the corpus's q-gram length.
func (c *Corpus) Q() int { return c.q }

// Select finds the rows matching query at the threshold, restricted to
// langs, using the given strategy. All strategies return identical
// results except Indexed, which may have false dismissals (§5.3).
// Options (Parallel) tune execution without changing results: the
// candidate range is split into morsels consumed by a worker pool with
// per-worker scratch and stats, merged in morsel order.
func (c *Corpus) Select(query Text, threshold float64, langs LangSet, strat Strategy, opts ...ExecOption) ([]int, Stats, error) {
	if threshold < 0 {
		threshold = c.op.threshold
	}
	if threshold > 1 {
		return nil, Stats{}, fmt.Errorf("core: match threshold %v outside [0,1]", threshold)
	}
	qp, err := c.op.Transform(query.Value, query.Lang)
	if err != nil {
		return nil, Stats{}, err
	}
	o := resolveOpts(opts)
	switch strat {
	case Naive:
		return c.selectNaive(qp, threshold, langs, o)
	case QGram:
		return c.selectQGram(qp, threshold, langs, o)
	case Indexed:
		return c.selectIndexed(qp, threshold, langs, o)
	default:
		return nil, Stats{}, fmt.Errorf("core: unknown strategy %v", strat)
	}
}

// selectNaive scans every row, but runs the batched signature prefilter
// (a couple of word operations against precomputed batch columns)
// before paying for edit-distance verification — the naive plan's
// Candidates therefore undercount Rows by exactly PrunedSig.
func (c *Corpus) selectNaive(qp phoneme.String, e float64, langs LangSet, o execOpts) ([]int, Stats, error) {
	pm := c.op.NewBatchMatcher(qp, e, o.kernel)
	sf := c.op.NewSigFilter(qp, e, c.q)
	chunks, st := RunMorsels(len(c.texts), o.workers, func(ln *Lane, lo, hi int) []int {
		var out []int
		for i := lo; i < hi; i++ {
			if c.batch.phon.RowLen(i) == 0 || !langs.Contains(c.texts[i].Lang) {
				continue
			}
			ln.Stats.Rows++
			if !sf.Admit(&c.batch, i, &ln.Stats) {
				continue
			}
			ln.Stats.Candidates++
			if pm.Match(&c.batch, i, ln) {
				out = append(out, i)
			}
		}
		return out
	})
	out := MergeChunks(chunks)
	st.Matches = len(out)
	return out, st, nil
}

// selectQGram implements the Figure 14 plan: the edit-distance budget is
// k = e·|query| (the paper uses the query length in all three filter
// predicates) slacked per row by the pair's weak counts (SigBudget),
// the inverted index supplies position-filtered gram match counts, and
// candidates passing the length and count filters are verified with the
// UDF. The probe phase runs once; the filter+verify scan is
// morsel-parallel (counts is read-only by then).
func (c *Corpus) selectQGram(qp phoneme.String, e float64, langs LangSet, o execOpts) ([]int, Stats, error) {
	base := e * float64(len(qp))
	qweak := editdist.WeakCount(qp)
	kRow := func(i int) float64 { return c.op.SigBudget(base, qweak+int(c.batch.wk[i])) }
	qproj := c.encoder.Project(qp)
	pm := c.op.NewBatchMatcher(qp, e, o.kernel)
	counts := make(map[int]int)
	for _, g := range qgram.Extract(qproj, c.q) {
		for _, p := range c.grams[g.Key()] {
			if qgram.PositionOK(g.Pos, p.pos, kRow(p.row)) {
				counts[p.row]++
			}
		}
	}
	chunks, st := RunMorsels(len(c.texts), o.workers, func(ln *Lane, lo, hi int) []int {
		var out []int
		for i := lo; i < hi; i++ {
			if c.batch.phon.RowLen(i) == 0 || !langs.Contains(c.texts[i].Lang) {
				continue
			}
			ln.Stats.Rows++
			k := kRow(i)
			if !qgram.LengthOK(len(qproj), c.proj.RowLen(i), k) {
				ln.Stats.PrunedLength++
				continue
			}
			need := qgram.CountThreshold(len(qproj), c.proj.RowLen(i), c.q, k)
			if need > 0 && counts[i] < need {
				ln.Stats.PrunedCount++
				continue
			}
			ln.Stats.Candidates++
			if pm.Match(&c.batch, i, ln) {
				out = append(out, i)
			}
		}
		return out
	})
	out := MergeChunks(chunks)
	st.Matches = len(out)
	return out, st, nil
}

// selectIndexed implements the Figure 15 plan: probe the grouped-
// phoneme-identifier index and verify the (few) rows sharing the
// query's cluster signature. Fast, with false dismissals for matches
// whose edits cross cluster boundaries. The posting list is morseled
// like any other candidate range.
func (c *Corpus) selectIndexed(qp phoneme.String, e float64, langs LangSet, o execOpts) ([]int, Stats, error) {
	group := c.grouped[c.encoder.Encode(qp)]
	pm := c.op.NewBatchMatcher(qp, e, o.kernel)
	chunks, st := RunMorsels(len(group), o.workers, func(ln *Lane, lo, hi int) []int {
		var out []int
		for _, i := range group[lo:hi] {
			if c.batch.phon.RowLen(i) == 0 || !langs.Contains(c.texts[i].Lang) {
				continue
			}
			ln.Stats.Rows++
			ln.Stats.Candidates++
			if pm.Match(&c.batch, i, ln) {
				out = append(out, i)
			}
		}
		return out
	})
	out := MergeChunks(chunks)
	st.Matches = len(out)
	return out, st, nil
}

// Pair is one result of a join: row indexes into the left and right
// corpora.
type Pair struct {
	Left, Right int
}

// Join finds all cross-corpus pairs matching at the threshold under the
// strategy, optionally requiring different languages (the paper's
// equi-join example restricts B1.Language <> B2.Language). The probe
// loop over left rows is split into morsels; per-worker scratch and
// stats plus the final normalizing sort make the output and Stats
// byte-identical to the serial path at any worker count.
func Join(left, right *Corpus, threshold float64, requireDifferentLang bool, strat Strategy, opts ...ExecOption) ([]Pair, Stats, error) {
	if threshold < 0 {
		threshold = left.op.threshold
	}
	if threshold > 1 {
		return nil, Stats{}, fmt.Errorf("core: match threshold %v outside [0,1]", threshold)
	}
	o := resolveOpts(opts)
	// The verification always runs under the left operator's cost model,
	// but the right batch's kernel signatures were built under the
	// right's: when the models differ the bit-parallel path would read
	// masks from the wrong model, so cross-model joins run scalar.
	// (Clustered and Unit are comparable values, so interface equality
	// compares model parameters.)
	kern := o.kernel
	if !left.op.CostEqual(right.op) {
		kern = KernelScalar
	}
	var probe func(ln *Lane, lo, hi int) []Pair
	switch strat {
	case Naive:
		// The batched signature prefilter needs the probe projection and
		// the right batch's signature columns to come from one encoder
		// and cost model; a shared operator guarantees both.
		useSig := left.op == right.op
		probe = func(ln *Lane, lo, hi int) []Pair {
			pm := left.op.NewLaneMatcher(ln, kern)
			var out []Pair
			for l := lo; l < hi; l++ {
				lp := left.batch.phon.View(l)
				if lp == nil {
					continue
				}
				pm.SetPattern(lp, threshold)
				var sf SigFilter
				if useSig {
					sf = left.op.NewSigFilter(lp, threshold, right.q)
				}
				for r := range right.texts {
					if right.batch.phon.RowLen(r) == 0 {
						continue
					}
					if requireDifferentLang && left.texts[l].Lang == right.texts[r].Lang {
						continue
					}
					ln.Stats.Rows++
					if useSig && !sf.Admit(&right.batch, r, &ln.Stats) {
						continue
					}
					ln.Stats.Candidates++
					if pm.Match(&right.batch, r, ln) {
						out = append(out, Pair{Left: l, Right: r})
					}
				}
			}
			return out
		}
	case QGram:
		// Probe-side signatures come from the corpus cache when the gram
		// lengths agree (always, for a self-join), so no per-probe gram
		// extraction or key rendering happens on the hot path.
		cached := left.q == right.q
		// Right rows ordered by weak count (descending): the zero-gram
		// sweep below visits rows in this order and stops as soon as the
		// count filter regains power, so glottal-free corpora pay nothing.
		sweepOrder := make([]int, len(right.texts))
		for r := range sweepOrder {
			sweepOrder[r] = r
		}
		sort.Slice(sweepOrder, func(a, b int) bool {
			wa, wb := right.batch.wk[sweepOrder[a]], right.batch.wk[sweepOrder[b]]
			if wa != wb {
				return wa > wb
			}
			return sweepOrder[a] < sweepOrder[b]
		})
		probe = func(ln *Lane, lo, hi int) []Pair {
			pm := left.op.NewLaneMatcher(ln, kern)
			var out []Pair
			for l := lo; l < hi; l++ {
				lp := left.batch.phon.View(l)
				if lp == nil {
					continue
				}
				pm.SetPattern(lp, threshold)
				lplen := left.proj.RowLen(l)
				// Budgets are per pair (SigBudget slacks by both weak
				// counts) under the LEFT operator's cost model — the model
				// the verification runs under.
				base := threshold * float64(len(lp))
				kPair := func(r int) float64 { return left.op.SigBudget(base, int(left.batch.wk[l])+int(right.batch.wk[r])) }
				counts := make(map[int]int)
				if cached {
					ln.Stats.SigCacheHits++
					for _, g := range left.sigGrams[l] {
						for _, p := range right.grams[g.key] {
							if qgram.PositionOK(g.pos, p.pos, kPair(p.row)) {
								counts[p.row]++
							}
						}
					}
				} else {
					for _, g := range qgram.Extract(left.proj.View(l), right.q) {
						for _, p := range right.grams[g.Key()] {
							if qgram.PositionOK(g.Pos, p.pos, kPair(p.row)) {
								counts[p.row]++
							}
						}
					}
				}
				tryPair := func(r, cnt int) {
					if right.batch.phon.RowLen(r) == 0 {
						return
					}
					if requireDifferentLang && left.texts[l].Lang == right.texts[r].Lang {
						return
					}
					ln.Stats.Rows++
					k := kPair(r)
					if !qgram.LengthOK(lplen, right.proj.RowLen(r), k) {
						ln.Stats.PrunedLength++
						return
					}
					need := qgram.CountThreshold(lplen, right.proj.RowLen(r), right.q, k)
					if need > 0 && cnt < need {
						ln.Stats.PrunedCount++
						return
					}
					ln.Stats.Candidates++
					if pm.Match(&right.batch, r, ln) {
						out = append(out, Pair{Left: l, Right: r})
					}
				}
				for r, cnt := range counts {
					tryPair(r, cnt)
				}
				// Rows sharing no position-compatible gram can still be
				// true matches when the count filter has no power for the
				// pair (short strings, or weak-count slack swallowing the
				// whole budget). Sweep them only in that regime: rows in
				// descending weak order, stopping once the count filter
				// regains power (need is monotone in the row's weak count,
				// and CountThreshold's second argument 0 selects the
				// admissible length that minimizes it).
				capK := left.op.SigBudgetCap(base)
				if math.IsInf(capK, 1) || qgram.CountThreshold(lplen, 0, right.q, capK) <= 0 {
					for _, r := range sweepOrder {
						if qgram.CountThreshold(lplen, 0, right.q, kPair(r)) > 0 {
							break
						}
						if _, seen := counts[r]; !seen {
							tryPair(r, 0)
						}
					}
				}
			}
			return out
		}
	case Indexed:
		probe = func(ln *Lane, lo, hi int) []Pair {
			pm := left.op.NewLaneMatcher(ln, kern)
			var out []Pair
			for l := lo; l < hi; l++ {
				lp := left.batch.phon.View(l)
				if lp == nil {
					continue
				}
				pm.SetPattern(lp, threshold)
				id := right.encoder.Encode(lp)
				for _, r := range right.grouped[id] {
					if right.batch.phon.RowLen(r) == 0 {
						continue
					}
					if requireDifferentLang && left.texts[l].Lang == right.texts[r].Lang {
						continue
					}
					ln.Stats.Rows++
					ln.Stats.Candidates++
					if pm.Match(&right.batch, r, ln) {
						out = append(out, Pair{Left: l, Right: r})
					}
				}
			}
			return out
		}
	default:
		return nil, Stats{}, fmt.Errorf("core: unknown strategy %v", strat)
	}
	chunks, st := RunMorsels(len(left.texts), o.workers, probe)
	out := MergeChunks(chunks)
	// The q-gram strategy discovers candidates in hash order; normalize
	// so all strategies return deterministically ordered results.
	sort.Slice(out, func(i, j int) bool {
		if out[i].Left != out[j].Left {
			return out[i].Left < out[j].Left
		}
		return out[i].Right < out[j].Right
	})
	st.Matches = len(out)
	return out, st, nil
}

// SelfJoin runs Join of a corpus with itself, returning each unordered
// pair once (Left < Right).
func SelfJoin(c *Corpus, threshold float64, requireDifferentLang bool, strat Strategy, opts ...ExecOption) ([]Pair, Stats, error) {
	pairs, st, err := Join(c, c, threshold, requireDifferentLang, strat, opts...)
	if err != nil {
		return nil, st, err
	}
	out := pairs[:0]
	for _, p := range pairs {
		if p.Left < p.Right {
			out = append(out, p)
		}
	}
	st.Matches = len(out)
	return out, st, nil
}
