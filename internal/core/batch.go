package core

import (
	"lexequal/internal/editdist"
	"lexequal/internal/phoneme"
	"lexequal/internal/qgram"
)

// Column is a flat columnar vector of phoneme strings: one contiguous
// buffer plus a (rows+1)-entry offsets array, so row i occupies
// buf[offs[i]:offs[i+1]]. Views alias the shared buffer (read-only by
// contract) and a zero-length row views as nil, mirroring the
// row-at-a-time representation where absent transforms are nil strings.
type Column struct {
	buf  []phoneme.Phoneme
	offs []int32
}

// Append adds one row. Appending invalidates previously taken views
// (the buffer may move), so builders append everything first and view
// after.
func (c *Column) Append(s phoneme.String) {
	if len(c.offs) == 0 {
		c.offs = append(c.offs, 0)
	}
	c.buf = append(c.buf, s...)
	c.offs = append(c.offs, int32(len(c.buf)))
}

// Len returns the number of rows.
func (c *Column) Len() int {
	if len(c.offs) == 0 {
		return 0
	}
	return len(c.offs) - 1
}

// View returns row i without copying; nil for a zero-length row. The
// three-index slice caps the view so even an appending caller could not
// scribble past a row's end into its neighbor.
func (c *Column) View(i int) phoneme.String {
	lo, hi := c.offs[i], c.offs[i+1]
	if lo == hi {
		return nil
	}
	return phoneme.String(c.buf[lo:hi:hi])
}

// RowLen returns row i's length without materializing a view.
func (c *Column) RowLen(i int) int { return int(c.offs[i+1] - c.offs[i]) }

// Batch is the flat columnar form of a candidate set: the phoneme rows
// in one contiguous buffer plus the per-row scalars the bit-parallel
// kernel (weak counts, kernel signatures) and the batched q-gram
// signature prefilter (projected lengths, Bloom signatures) consume,
// all built once per scan so the per-pair hot path does no interface
// calls and no per-row allocation.
type Batch struct {
	phon Column
	wk   []int32  // per-row weak (glottal) phoneme counts
	ksig []uint64 // kernel candidate signatures (nil = kernel off)
	plen []int32  // projected lengths (nil = sig prefilter off)
	gsig []uint64 // q-gram Bloom signatures over the projection
}

// Len returns the number of rows.
func (b *Batch) Len() int { return b.phon.Len() }

// View returns row i's phoneme string (nil for zero-length rows).
func (b *Batch) View(i int) phoneme.String { return b.phon.View(i) }

// ProjLen returns row i's signature-projection length; valid only when
// the batch was built with the prefilter columns (sigQ > 0).
func (b *Batch) ProjLen(i int) int { return int(b.plen[i]) }

// BuildBatch materializes rows into a flat columnar batch. The kernel
// signature column is built when k requests the bit-parallel kernel and
// the operator's cost model compiles; sigQ > 0 additionally builds the
// signature-prefilter columns (projected lengths and q-gram Bloom
// signatures at gram length sigQ). Rows may be nil (NORESOURCE or
// empty); they round-trip as nil views.
func (op *Operator) BuildBatch(rows []phoneme.String, k Kernel, sigQ int) *Batch {
	b := &Batch{wk: make([]int32, len(rows))}
	total := 0
	for _, p := range rows {
		total += len(p)
	}
	b.phon.buf = make([]phoneme.Phoneme, 0, total)
	b.phon.offs = make([]int32, 0, len(rows)+1)
	kern := op.compileKernel(k)
	if kern != nil {
		b.ksig = make([]uint64, len(rows))
	}
	if sigQ > 0 {
		b.plen = make([]int32, len(rows))
		b.gsig = make([]uint64, len(rows))
	}
	for i, p := range rows {
		b.phon.Append(p)
		b.wk[i] = int32(editdist.WeakCount(p))
		if kern != nil {
			b.ksig[i] = kern.CandSig(p)
		}
		if sigQ > 0 {
			pr := op.encoder.Project(p)
			b.plen[i] = int32(len(pr))
			b.gsig[i] = qgram.Signature(pr, sigQ)
		}
	}
	return b
}
