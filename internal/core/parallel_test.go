package core

import (
	"fmt"
	"reflect"
	"runtime"
	"testing"
)

// bigCatalog builds a corpus large enough to span many morsels (well
// over MorselSize rows) from deterministic syllable products, with the
// small cross-script catalog mixed in so every strategy has real
// matches to find.
func bigCatalog() []Text {
	out := catalog()
	pre := []string{"na", "ne", "ni", "ka", "ke", "sa", "so", "ra", "ga", "ta"}
	mid := []string{"ru", "ro", "ri", "ndi", "thy", "lin", "mar", "van"}
	suf := []string{"", "n", "s", "la", "ra", "ta", "ya"}
	for _, p := range pre {
		for _, m := range mid {
			for _, s := range suf {
				out = append(out, en(p+m+s))
			}
		}
	}
	return out // 12 + 10*8*7 = 572 rows, i.e. 3 morsels of 256
}

func buildBigCorpus(t *testing.T, op *Operator) *Corpus {
	t.Helper()
	c, err := op.NewCorpus(bigCatalog())
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func workerCounts() []int {
	counts := []int{1, 2, 4}
	if g := runtime.GOMAXPROCS(0); g != 1 && g != 2 && g != 4 {
		counts = append(counts, g)
	}
	return counts
}

// TestSelectDeterministicAcrossWorkers is the parallelism contract:
// results and Stats from Select are byte-identical at every worker
// count, for every strategy. Run under -race this also exercises the
// morsel pool for data races.
func TestSelectDeterministicAcrossWorkers(t *testing.T) {
	op := newOp(t)
	c := buildBigCorpus(t, op)
	queries := []Text{en("Nehru"), en("Gandhi"), en("narula"), en("kathy")}
	for _, strat := range []Strategy{Naive, QGram, Indexed} {
		for _, q := range queries {
			base, baseSt, err := c.Select(q, 0.30, nil, strat, Parallel(1))
			if err != nil {
				t.Fatal(err)
			}
			for _, w := range workerCounts() {
				got, st, err := c.Select(q, 0.30, nil, strat, Parallel(w))
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(got, base) {
					t.Errorf("%v %v workers=%d: results %v != serial %v", strat, q, w, got, base)
				}
				if st != baseSt {
					t.Errorf("%v %v workers=%d: stats %+v != serial %+v", strat, q, w, st, baseSt)
				}
			}
		}
	}
}

// TestJoinDeterministicAcrossWorkers pins SelfJoin (and hence Join) to
// the same contract: pairs and Stats identical at every worker count.
func TestJoinDeterministicAcrossWorkers(t *testing.T) {
	op := newOp(t)
	c := buildBigCorpus(t, op)
	for _, strat := range []Strategy{Naive, QGram, Indexed} {
		base, baseSt, err := SelfJoin(c, 0.25, false, strat, Parallel(1))
		if err != nil {
			t.Fatal(err)
		}
		if len(base) == 0 {
			t.Fatalf("%v: self-join found nothing; test corpus is too sparse", strat)
		}
		for _, w := range workerCounts() {
			got, st, err := SelfJoin(c, 0.25, false, strat, Parallel(w))
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, base) {
				t.Errorf("%v workers=%d: %d pairs != serial %d pairs", strat, w, len(got), len(base))
			}
			if st != baseSt {
				t.Errorf("%v workers=%d: stats %+v != serial %+v", strat, w, st, baseSt)
			}
		}
	}
}

// TestParallelMatchesLegacySerial pins the morselized strategies to the
// plain (no-option) call, which is the pre-parallelism serial contract.
func TestParallelMatchesLegacySerial(t *testing.T) {
	op := newOp(t)
	c := buildCorpus(t, op)
	for _, strat := range []Strategy{Naive, QGram, Indexed} {
		plain, plainSt, err := c.Select(en("Nehru"), 0.30, nil, strat)
		if err != nil {
			t.Fatal(err)
		}
		par, parSt, err := c.Select(en("Nehru"), 0.30, nil, strat, Parallel(4))
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(plain, par) || plainSt != parSt {
			t.Errorf("%v: parallel result/stats diverge from default call", strat)
		}
	}
}

// TestSigCacheHits verifies the q-gram join reuses the corpus-side
// signature cache when gram lengths agree (always, for a self-join) and
// falls back to per-probe extraction when they differ.
func TestSigCacheHits(t *testing.T) {
	op := newOp(t)
	c := buildCorpus(t, op)
	_, st, err := SelfJoin(c, 0.30, false, QGram)
	if err != nil {
		t.Fatal(err)
	}
	if st.SigCacheHits == 0 {
		t.Error("self-join reported zero signature-cache hits")
	}
	// A join against a corpus with a different q cannot reuse cached
	// signatures, but must still produce the same pairs as a naive join.
	other, err := op.NewCorpusQ(catalog(), DefaultQ-1)
	if err != nil {
		t.Fatal(err)
	}
	pairs, st3, err := Join(c, other, 0.30, false, QGram)
	if err != nil {
		t.Fatal(err)
	}
	if st3.SigCacheHits != 0 {
		t.Errorf("mixed-q join claimed %d cache hits", st3.SigCacheHits)
	}
	naive, _, err := Join(c, other, 0.30, false, Naive)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(pairs, naive) {
		t.Errorf("mixed-q qgram join diverges from naive:\nqgram %v\nnaive %v", pairs, naive)
	}
}

// TestStageCounters checks the new per-stage counters are populated and
// internally consistent: every probed row is either pruned or verified.
func TestStageCounters(t *testing.T) {
	op := newOp(t)
	c := buildBigCorpus(t, op)
	_, st, err := c.Select(en("Nehru"), 0.25, nil, QGram)
	if err != nil {
		t.Fatal(err)
	}
	if st.DPCells <= 0 {
		t.Errorf("DPCells = %d, want > 0", st.DPCells)
	}
	if st.Rows != st.PrunedLength+st.PrunedCount+st.Candidates {
		t.Errorf("counters inconsistent: rows %d != pruned(len) %d + pruned(count) %d + candidates %d",
			st.Rows, st.PrunedLength, st.PrunedCount, st.Candidates)
	}
	// Naive never touches the q-gram index filters, but its batched
	// signature prefilter accounts for every row it dismisses.
	_, stn, err := c.Select(en("Nehru"), 0.25, nil, Naive)
	if err != nil {
		t.Fatal(err)
	}
	if stn.PrunedLength != 0 || stn.PrunedCount != 0 {
		t.Errorf("naive scan used q-gram index filters: %+v", stn)
	}
	if stn.Rows != stn.PrunedSig+stn.Candidates {
		t.Errorf("naive rows %d != pruned(sig) %d + candidates %d",
			stn.Rows, stn.PrunedSig, stn.Candidates)
	}
	if stn.PrunedSig == 0 {
		t.Error("signature prefilter pruned nothing on the big corpus")
	}
}

// TestParallelZeroAndNegativeWorkers checks workers <= 0 resolves to
// GOMAXPROCS rather than hanging or erroring.
func TestParallelZeroAndNegativeWorkers(t *testing.T) {
	op := newOp(t)
	c := buildCorpus(t, op)
	for _, w := range []int{0, -1} {
		got, _, err := c.Select(en("Nehru"), 0.30, nil, Naive, Parallel(w))
		if err != nil {
			t.Fatal(err)
		}
		base, _, _ := c.Select(en("Nehru"), 0.30, nil, Naive)
		if !reflect.DeepEqual(got, base) {
			t.Errorf("workers=%d diverges from serial", w)
		}
	}
}

func BenchmarkSelfJoinParallel(b *testing.B) {
	op := MustNew(Options{})
	texts := bigCatalog()
	c, err := op.NewCorpus(texts)
	if err != nil {
		b.Fatal(err)
	}
	for _, w := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("qgram/workers=%d", w), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := SelfJoin(c, 0.25, false, QGram, Parallel(w)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
