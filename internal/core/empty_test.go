package core

import (
	"testing"

	"lexequal/internal/editdist"
	"lexequal/internal/phoneme"
)

// TestMatchPhonemesEmptyStrings pins the match predicate for zero-length
// phonemic strings. An empty transcription forces min(|Tl|,|Tr|) = 0 and
// therefore bound 0 regardless of threshold: two empty strings match
// (distance 0 ≤ 0), while empty vs non-empty must never match — an empty
// phoneme string is not a universal wildcard. No input may panic.
func TestMatchPhonemesEmptyStrings(t *testing.T) {
	op := newOp(t)
	empty := phoneme.String{}
	neru, err := phoneme.Parse("neru")
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name      string
		a, b      phoneme.String
		threshold float64
		want      bool
	}{
		{"empty-empty t=0", empty, empty, 0, true},
		{"empty-empty t=1", empty, empty, 1, true},
		{"empty-vs-neru t=0.3", empty, neru, 0.3, false},
		{"neru-vs-empty t=0.3", neru, empty, 0.3, false},
		{"empty-vs-neru t=1", empty, neru, 1, false},
	}
	s := editdist.NewScratch()
	for _, c := range cases {
		if got := op.MatchPhonemes(c.a, c.b, c.threshold); got != c.want {
			t.Errorf("MatchPhonemes %s = %v, want %v", c.name, got, c.want)
		}
		if got := op.MatchPhonemesScratch(c.a, c.b, c.threshold, s); got != c.want {
			t.Errorf("MatchPhonemesScratch %s = %v, want %v", c.name, got, c.want)
		}
	}
	// Bound must be exactly 0 whenever either side is empty.
	if b := op.Bound(empty, neru, 0.9); b != 0 {
		t.Errorf("Bound(∅, neru) = %v, want 0", b)
	}
}
