package core

import (
	"fmt"
	"math"
	"sort"

	"lexequal/internal/editdist"
	"lexequal/internal/phoneme"
)

// MetricIndex is a Burkhard-Keller tree over phoneme strings under the
// operator's clustered edit distance — the "metric index for phonemes"
// the paper names as future work (§6, citing Baeza-Yates & Navarro).
// Unlike the grouped-phoneme-identifier index of §5.3, a metric index
// has NO false dismissals: the triangle inequality prunes subtrees that
// provably cannot contain a match, and everything else is verified.
//
// The clustered cost model is a metric for ICSC in (0,1] and weak-indel
// in (0,1] (all single-edit costs are symmetric and satisfy the
// triangle inequality; for ICSC = 0 it degenerates to a pseudometric,
// which still never produces false dismissals — only coarser pruning).
//
// Distances are bucketed at a fixed quantum so the classic integer-
// bucketed BK-tree structure applies to fractional costs.
type MetricIndex struct {
	op      *Operator
	quantum float64
	root    *bkNode
	size    int
}

type bkNode struct {
	row      int
	phon     phoneme.String
	children map[int]*bkNode // bucketed distance -> subtree
}

// metricQuantum buckets distances; 0.25 is the finest step the default
// cost model produces.
const metricQuantum = 0.25

// NewMetricIndex builds a BK-tree over the corpus rows (NORESOURCE
// rows are skipped). Construction performs O(n log n)-ish distance
// computations.
func (c *Corpus) NewMetricIndex() *MetricIndex {
	mi := &MetricIndex{op: c.op, quantum: metricQuantum}
	for i := range c.texts {
		p := c.Phonemes(i)
		if p == nil {
			continue
		}
		mi.insert(i, p)
	}
	return mi
}

// Size returns the number of indexed strings.
func (mi *MetricIndex) Size() int { return mi.size }

func (mi *MetricIndex) bucket(d float64) int {
	return int(math.Round(d / mi.quantum))
}

func (mi *MetricIndex) insert(row int, p phoneme.String) {
	mi.size++
	if mi.root == nil {
		mi.root = &bkNode{row: row, phon: p, children: map[int]*bkNode{}}
		return
	}
	n := mi.root
	for {
		d := editdist.Distance(p, n.phon, mi.op.cost)
		b := mi.bucket(d)
		child, ok := n.children[b]
		if !ok {
			n.children[b] = &bkNode{row: row, phon: p, children: map[int]*bkNode{}}
			return
		}
		n = child
	}
}

// Select finds all rows within the LexEQUAL threshold of the query,
// exactly like the Naive strategy but visiting only the subtrees the
// triangle inequality cannot exclude. The Stats' Candidates field
// counts distance evaluations. Language filtering lives in
// Corpus.SelectMetric so that one tree serves every INLANGUAGES
// combination.
func (mi *MetricIndex) Select(query Text, threshold float64) ([]int, Stats, error) {
	if threshold < 0 {
		threshold = mi.op.threshold
	}
	if threshold > 1 {
		return nil, Stats{}, fmt.Errorf("core: match threshold %v outside [0,1]", threshold)
	}
	qp, err := mi.op.Transform(query.Value, query.Lang)
	if err != nil {
		return nil, Stats{}, err
	}
	var st Stats
	st.Rows = mi.size
	var out []int
	// The match bound depends on the candidate's length (e·min(|q|,|c|)),
	// which varies per node. For pruning we need a single radius valid
	// for every admissible candidate: bound <= e·|q| always, so r =
	// e·|q| is a safe search radius; each surviving node is then
	// verified with its exact bound.
	radius := threshold * float64(len(qp))
	var visit func(n *bkNode)
	visit = func(n *bkNode) {
		if n == nil {
			return
		}
		st.Candidates++
		d := editdist.Distance(qp, n.phon, mi.op.cost)
		if mi.matchAt(qp, n.phon, d, threshold) {
			out = append(out, n.row)
		}
		lo := mi.bucket(math.Max(0, d-radius))
		hi := mi.bucket(d + radius)
		for b, child := range n.children {
			if b >= lo && b <= hi {
				visit(child)
			}
		}
	}
	visit(mi.root)
	sortInts(out)
	st.Matches = len(out)
	return out, st, nil
}

// matchAt applies the exact Figure 8 bound given the precomputed
// distance.
func (mi *MetricIndex) matchAt(qp, cp phoneme.String, d, threshold float64) bool {
	smaller := len(qp)
	if len(cp) < smaller {
		smaller = len(cp)
	}
	return d <= threshold*float64(smaller)
}

// SelectMetric runs a metric-index search over the corpus, applying
// the language filter against the corpus rows (kept out of the tree so
// one tree serves every INLANGUAGES combination).
func (c *Corpus) SelectMetric(mi *MetricIndex, query Text, threshold float64, langs LangSet) ([]int, Stats, error) {
	rows, st, err := mi.Select(query, threshold)
	if err != nil {
		return nil, st, err
	}
	if langs == nil {
		return rows, st, nil
	}
	out := rows[:0]
	for _, i := range rows {
		if langs.Contains(c.texts[i].Lang) {
			out = append(out, i)
		}
	}
	st.Matches = len(out)
	return out, st, nil
}

func sortInts(xs []int) { sort.Ints(xs) }
