package core

import (
	"reflect"
	"testing"

	"lexequal/internal/script"
)

func TestMetricIndexExactMatchesNaive(t *testing.T) {
	op := newOp(t)
	c := buildCorpus(t, op)
	mi := c.NewMetricIndex()
	if mi.Size() != c.Len()-len(c.Skipped()) {
		t.Errorf("Size = %d, want %d", mi.Size(), c.Len()-len(c.Skipped()))
	}
	queries := []Text{en("Nehru"), en("Gandhi"), en("Cathy"), el("Σαρρη"), en("Zzyzx")}
	for _, q := range queries {
		for _, thr := range []float64{0, 0.1, 0.25, 0.3, 0.5} {
			naive, _, err := c.Select(q, thr, nil, Naive)
			if err != nil {
				t.Fatal(err)
			}
			metric, st, err := c.SelectMetric(mi, q, thr, nil)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(naive, metric) {
				t.Errorf("%v @%v: naive %v != metric %v", q, thr, naive, metric)
			}
			if st.Candidates > mi.Size() {
				t.Errorf("more distance evaluations than entries: %+v", st)
			}
		}
	}
}

func TestMetricIndexPrunes(t *testing.T) {
	// Over a larger corpus the triangle inequality must actually skip
	// subtrees at tight thresholds.
	op := newOp(t)
	var texts []Text
	base := []string{
		"Nehru", "Gandhi", "Krishna", "Kamala", "Sita", "Mohan", "Ramesh",
		"Suresh", "Catherine", "Jonathan", "Elizabeth", "Washington",
		"Hydrogen", "Oxygen", "Potassium", "Barcelona", "Amsterdam",
	}
	for _, a := range base {
		for _, b := range base {
			texts = append(texts, en(a+b))
		}
	}
	c, err := op.NewCorpus(texts)
	if err != nil {
		t.Fatal(err)
	}
	mi := c.NewMetricIndex()
	_, st, err := c.SelectMetric(mi, en("NehruGandhi"), 0.1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if st.Candidates >= mi.Size() {
		t.Errorf("no pruning: %d evaluations for %d entries", st.Candidates, mi.Size())
	}
}

func TestMetricIndexLanguageFilter(t *testing.T) {
	op := newOp(t)
	c := buildCorpus(t, op)
	mi := c.NewMetricIndex()
	rows, _, err := c.SelectMetric(mi, en("Nehru"), 0.3, NewLangSet(script.Hindi))
	if err != nil {
		t.Fatal(err)
	}
	for _, i := range rows {
		if c.Text(i).Lang != script.Hindi {
			t.Errorf("language filter leaked %v", c.Text(i))
		}
	}
	if len(rows) == 0 {
		t.Error("filtered metric search found nothing")
	}
}

func TestMetricIndexInvalidThreshold(t *testing.T) {
	op := newOp(t)
	c := buildCorpus(t, op)
	mi := c.NewMetricIndex()
	if _, _, err := mi.Select(en("x"), 1.5); err == nil {
		t.Error("threshold 1.5 accepted")
	}
}

func TestMetricIndexDefaultThreshold(t *testing.T) {
	op := newOp(t)
	c := buildCorpus(t, op)
	mi := c.NewMetricIndex()
	rows, _, err := mi.Select(en("Nehru"), -1)
	if err != nil || len(rows) == 0 {
		t.Errorf("default-threshold metric select = %v, %v", rows, err)
	}
}

func TestMetricIndexEmptyCorpus(t *testing.T) {
	op := newOp(t)
	c, err := op.NewCorpus(nil)
	if err != nil {
		t.Fatal(err)
	}
	mi := c.NewMetricIndex()
	rows, _, err := mi.Select(en("Nehru"), 0.3)
	if err != nil || len(rows) != 0 {
		t.Errorf("empty metric index = %v, %v", rows, err)
	}
}
