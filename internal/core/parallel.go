package core

import (
	"runtime"
	"sync"
	"sync/atomic"

	"lexequal/internal/editdist"
)

// ExecOption tunes how a strategy executes (it never changes what the
// strategy returns).
type ExecOption func(*execOpts)

type execOpts struct {
	workers int
	kernel  Kernel
}

// Parallel runs the strategy's candidate loop on a morsel-driven worker
// pool of the given size. workers <= 0 selects GOMAXPROCS; 1 (the
// default) is the serial path. Results and Stats are byte-identical to
// the serial execution at any worker count: morsels are merged in index
// order and all counters are order-independent sums.
func Parallel(workers int) ExecOption {
	return func(o *execOpts) { o.workers = workers }
}

// WithKernel selects the verification kernel (Auto by default). Like
// Parallel, it never changes what a strategy returns: the bit-parallel
// kernel's decisions are exact, and after Stats.Canon (which masks the
// kernel-dependent work counters) Stats too are identical across
// kernels.
func WithKernel(k Kernel) ExecOption {
	return func(o *execOpts) { o.kernel = k }
}

func resolveOpts(opts []ExecOption) execOpts {
	o := execOpts{workers: 1, kernel: KernelAuto}
	for _, f := range opts {
		f(&o)
	}
	if o.workers <= 0 {
		o.workers = runtime.GOMAXPROCS(0)
	}
	return o
}

// MorselSize is the number of candidate rows a worker claims at a time.
// Large enough that the atomic claim is noise, small enough that a
// skewed morsel (one row with a huge candidate fan-out) cannot leave
// the pool idle for long.
const MorselSize = 256

// Lane is the per-worker state of a morsel scan: a private DP scratch
// and a private Stats accumulator, merged once when the pool drains.
// Exported so other execution layers (the db verification stage) can
// reuse the scheduler.
type Lane struct {
	Scratch *editdist.Scratch
	Stats   Stats

	// bv is the lane-private bit-parallel kernel for pattern-varying
	// probes (joins re-Prepare it per probe row, which mutates kernel
	// state and so cannot share one instance across lanes). Built on
	// first use; bvInit caches the "model does not compile" nil too.
	bv     *editdist.Bitvec
	bvInit bool
}

// kernel returns the lane-private bit-parallel kernel, compiling it
// from the operator's cost model on first use (nil when the model is
// not bit-parallelizable).
func (ln *Lane) kernel(op *Operator) *editdist.Bitvec {
	if !ln.bvInit {
		ln.bv, _ = editdist.NewBitvec(op.cost)
		ln.bvInit = true
	}
	return ln.bv
}

func (ln *Lane) harvest() Stats {
	ln.Stats.DPCells += ln.Scratch.TakeCells()
	return ln.Stats
}

// RunMorsels partitions [0, n) into fixed-size morsels consumed by a
// pool of workers and returns the per-morsel outputs in morsel order
// plus the merged Stats. process must treat (lo, hi) as its exclusive
// slice of the candidate range and must only touch shared state
// read-only; per-worker mutable state lives in the lane. With one
// worker everything runs inline on the calling goroutine, so the serial
// strategies are literally the parallel ones at width 1.
func RunMorsels[T any](n, workers int, process func(ln *Lane, lo, hi int) []T) ([][]T, Stats) {
	numMorsels := (n + MorselSize - 1) / MorselSize
	out := make([][]T, numMorsels)
	if workers > numMorsels {
		workers = numMorsels
	}
	if workers <= 1 {
		ln := Lane{Scratch: editdist.NewScratch()}
		for m := 0; m < numMorsels; m++ {
			lo, hi := morselBounds(m, n)
			out[m] = process(&ln, lo, hi)
		}
		return out, ln.harvest()
	}
	var next atomic.Int64
	lanes := make([]Lane, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(ln *Lane) {
			defer wg.Done()
			ln.Scratch = editdist.NewScratch()
			for {
				m := int(next.Add(1)) - 1
				if m >= numMorsels {
					return
				}
				lo, hi := morselBounds(m, n)
				out[m] = process(ln, lo, hi)
			}
		}(&lanes[w])
	}
	wg.Wait()
	var st Stats
	for i := range lanes {
		st.Add(lanes[i].harvest())
	}
	return out, st
}

func morselBounds(m, n int) (lo, hi int) {
	lo = m * MorselSize
	hi = lo + MorselSize
	if hi > n {
		hi = n
	}
	return lo, hi
}

// MergeChunks concatenates per-morsel outputs in morsel order, so the
// merged slice is independent of which worker ran which morsel.
func MergeChunks[T any](chunks [][]T) []T {
	total := 0
	for _, c := range chunks {
		total += len(c)
	}
	if total == 0 {
		return nil // match the serial strategies' nil empty result
	}
	out := make([]T, 0, total)
	for _, c := range chunks {
		out = append(out, c...)
	}
	return out
}
