package core

import (
	"fmt"

	"lexequal/internal/editdist"
	"lexequal/internal/phoneme"
	"lexequal/internal/qgram"
)

// Kernel selects how the edit-distance verification stage executes.
// The choice never changes results: the bit-parallel kernel either
// decides a pair with the scalar kernel's exact outcome or defers the
// pair to the scalar kernel (see editdist.Bitvec).
type Kernel uint8

// Verification kernels.
const (
	KernelAuto   Kernel = iota // bit-parallel when the cost model compiles
	KernelScalar               // always the scalar banded DP
	KernelBitvec               // bit-parallel requested explicitly
)

func (k Kernel) String() string {
	switch k {
	case KernelAuto:
		return "auto"
	case KernelScalar:
		return "scalar"
	case KernelBitvec:
		return "bitvec"
	default:
		return fmt.Sprintf("Kernel(%d)", uint8(k))
	}
}

// ParseKernel resolves a kernel name from CLI/SQL settings.
func ParseKernel(s string) (Kernel, error) {
	switch s {
	case "", "auto":
		return KernelAuto, nil
	case "scalar", "dp":
		return KernelScalar, nil
	case "bitvec", "bitvector", "myers":
		return KernelBitvec, nil
	default:
		return KernelAuto, fmt.Errorf("core: unknown kernel %q", s)
	}
}

// ResolveKernel reports which kernel will verify under this operator's
// cost model: Auto and Bitvec engage the bit-parallel kernel only when
// the model compiles (dyadic parameters), otherwise everything runs on
// the scalar path. Patterns longer than one machine word still fall
// back per query at runtime; this is the model-level decision EXPLAIN
// shows.
func (op *Operator) ResolveKernel(k Kernel) Kernel {
	if k != KernelScalar {
		if _, ok := editdist.NewBitvec(op.cost); ok {
			return KernelBitvec
		}
	}
	return KernelScalar
}

// compileKernel builds a bit-parallel kernel instance for the knob, or
// nil when the scalar path was chosen or the model is not
// bit-parallelizable.
func (op *Operator) compileKernel(k Kernel) *editdist.Bitvec {
	if k == KernelScalar {
		return nil
	}
	bv, ok := editdist.NewBitvec(op.cost)
	if !ok {
		return nil
	}
	return bv
}

// BatchMatcher verifies batch rows against one query pattern: the
// bit-parallel kernel decides most pairs outright, and undecided pairs
// (gray zone, oversized patterns, non-dyadic models) run the scalar DP,
// counted as ScalarFallbacks whenever a kernel was requested — the
// counter that proves the dispatch path. A matcher whose pattern is
// fixed for the whole scan may be shared by concurrent lanes (Decide
// only reads); pattern-varying probes must use a lane-private matcher
// (SetPattern mutates kernel state).
type BatchMatcher struct {
	op    *Operator
	bv    *editdist.Bitvec
	ready bool // bv is prepared for the current pattern
	tick  bool // a kernel was requested: count scalar verifications
	qp    phoneme.String
	e     float64
}

// NewBatchMatcher compiles a matcher with a fixed query pattern, for
// scans where every candidate compares against the same string.
func (op *Operator) NewBatchMatcher(qp phoneme.String, threshold float64, k Kernel) *BatchMatcher {
	m := &BatchMatcher{op: op, bv: op.compileKernel(k), tick: k != KernelScalar}
	m.SetPattern(qp, threshold)
	return m
}

// NewLaneMatcher builds a matcher over the lane-private kernel for
// pattern-varying probes (joins): call SetPattern before each probe
// row. The kernel instance is cached on the lane, so re-preparing costs
// only the sparse mask reset.
func (op *Operator) NewLaneMatcher(ln *Lane, k Kernel) *BatchMatcher {
	m := &BatchMatcher{op: op, tick: k != KernelScalar}
	if k != KernelScalar {
		m.bv = ln.kernel(op)
	}
	return m
}

// SetPattern re-prepares the matcher for a new query pattern.
func (m *BatchMatcher) SetPattern(qp phoneme.String, threshold float64) {
	m.qp, m.e = qp, threshold
	m.ready = m.bv != nil && m.bv.Prepare(qp)
}

// Bitvec reports whether the bit-parallel kernel is engaged for the
// current pattern.
func (m *BatchMatcher) Bitvec() bool { return m.ready }

// Match verifies batch row i under the Figure 8 bound (distance ≤
// threshold × shorter length), accumulating kernel counters into the
// lane. The batch's signature column must come from the same cost
// model as the matcher's kernel (both derive from one operator).
func (m *BatchMatcher) Match(b *Batch, i int, ln *Lane) bool {
	cand := b.phon.View(i)
	if m.ready && b.ksig != nil {
		smaller := len(m.qp)
		if len(cand) < smaller {
			smaller = len(cand)
		}
		matched, decided, ops := m.bv.Decide(cand, int(b.wk[i]), b.ksig[i], m.e*float64(smaller))
		ln.Stats.BitvecOps += ops
		if decided {
			return matched
		}
	}
	if m.tick {
		ln.Stats.ScalarFallbacks++
	}
	return m.op.MatchPhonemesScratch(m.qp, cand, m.e, ln.Scratch)
}

// SigFilter is the query-side state of the batched q-gram signature
// prefilter: projected-space length and Bloom gram-count checks decided
// from per-row batch columns with a couple of word operations, before
// any kernel work. Its projected-edit budget is the pair's edit bound
// plus both strings' weak counts: the default cluster set places
// glottals in the same cluster as dorsal obstruents, so an ICSC
// substitution between a glottal and a strong clustermate (as in
// /ha/~/ka/) changes the glottal-dropping projection by one full unit
// for less than a unit of cost — each glottal of either string accounts
// for at most one such unit, so the slacked budget is sound. The
// q-gram strategy's exact positional filters budget with the same slack
// (Operator.SigBudget); this filter is merely the coarser, batched
// form of it.
type SigFilter struct {
	qlen  int
	qproj int
	qweak int
	qsig  uint64
	q     int
	e     float64
}

// NewSigFilter prepares the prefilter for one query pattern; the batch
// side must have been built with sigQ = q.
func (op *Operator) NewSigFilter(qp phoneme.String, threshold float64, q int) SigFilter {
	pr := op.encoder.Project(qp)
	return SigFilter{
		qlen:  len(qp),
		qproj: len(pr),
		qweak: editdist.WeakCount(qp),
		qsig:  qgram.Signature(pr, q),
		q:     q,
		e:     threshold,
	}
}

// Admit reports whether batch row i can possibly match within the
// threshold; a false return is a proven dismissal and bumps PrunedSig.
// Batches without prefilter columns admit everything.
func (sf *SigFilter) Admit(b *Batch, i int, st *Stats) bool {
	if b.gsig == nil {
		return true
	}
	smaller := sf.qlen
	if n := b.phon.RowLen(i); n < smaller {
		smaller = n
	}
	k := sf.e*float64(smaller) + float64(sf.qweak+int(b.wk[i]))
	if !qgram.LengthOK(sf.qproj, int(b.plen[i]), k) {
		st.PrunedSig++
		return false
	}
	if need := qgram.CountThreshold(sf.qproj, int(b.plen[i]), sf.q, k); need > 0 &&
		qgram.MaxShared(sf.qsig, b.gsig[i], sf.qproj+sf.q-1) < need {
		st.PrunedSig++
		return false
	}
	return true
}
