package core

import (
	"fmt"
	"sync"
	"testing"

	"lexequal/internal/script"
)

// TestOperatorConcurrentTransform hammers the phoneme cache from many
// goroutines with more distinct keys than the cache holds, so the
// wholesale-reset path interleaves with concurrent readers. The test is
// meaningful under `make race`: it guards the lock-free cacheCap gating
// in Transform against regressions that reintroduce the unsynchronized
// cache-map read.
func TestOperatorConcurrentTransform(t *testing.T) {
	op := MustNew(Options{CacheSize: 8})
	words := make([]string, 32)
	for i := range words {
		words[i] = fmt.Sprintf("philosopher%d", i)
	}
	want := make([]string, len(words))
	for i, w := range words {
		p, err := op.Transform(w, script.English)
		if err != nil {
			t.Fatalf("Transform(%q): %v", w, err)
		}
		want[i] = p.IPA()
	}

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for round := 0; round < 100; round++ {
				i := (g + round) % len(words)
				p, err := op.Transform(words[i], script.English)
				if err != nil {
					t.Errorf("Transform(%q): %v", words[i], err)
					return
				}
				if got := p.IPA(); got != want[i] {
					t.Errorf("Transform(%q) = %q, want %q", words[i], got, want[i])
					return
				}
			}
		}(g)
	}
	wg.Wait()
}

// TestOperatorConcurrentMatch runs full Match calls from concurrent
// goroutines and checks every outcome agrees with a sequential
// baseline, covering the Transform cache and the shared cost model.
func TestOperatorConcurrentMatch(t *testing.T) {
	op := MustNew(Options{})
	pairs := []struct{ a, b Text }{
		{Text{"color", script.English}, Text{"colour", script.English}},
		{Text{"color", script.English}, Text{"philosophy", script.English}},
		{Text{"tokyo", script.Japanese}, Text{"tokyo", script.English}},
	}
	want := make([]Result, len(pairs))
	for i, pr := range pairs {
		r, err := op.Match(pr.a, pr.b, -1)
		if err != nil {
			t.Fatalf("Match(%s, %s): %v", pr.a, pr.b, err)
		}
		want[i] = r
	}
	if want[2] != NoResource {
		t.Fatalf("Match on an unregistered language = %v, want NORESOURCE", want[2])
	}

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for round := 0; round < 50; round++ {
				for i, pr := range pairs {
					r, err := op.Match(pr.a, pr.b, -1)
					if err != nil {
						t.Errorf("Match(%s, %s): %v", pr.a, pr.b, err)
						return
					}
					if r != want[i] {
						t.Errorf("Match(%s, %s) = %v, want %v", pr.a, pr.b, r, want[i])
						return
					}
				}
			}
		}()
	}
	wg.Wait()
}
