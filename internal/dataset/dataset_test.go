package dataset

import (
	"testing"

	"lexequal/internal/core"
	"lexequal/internal/script"
	"lexequal/internal/ttp"
)

func buildLex(t *testing.T) *Lexicon {
	t.Helper()
	lex, err := BuildLexicon(ttp.Default(), SourceAll)
	if err != nil {
		t.Fatal(err)
	}
	return lex
}

func TestBaseNamesDedup(t *testing.T) {
	names := BaseNames(SourceAll)
	seen := map[string]bool{}
	for _, n := range names {
		if seen[n] {
			t.Errorf("duplicate base name %q", n)
		}
		seen[n] = true
	}
	if len(names) < 700 {
		t.Errorf("only %d base names; the paper used about 800", len(names))
	}
	// Sources compose.
	in := len(BaseNames(SourceIndian))
	am := len(BaseNames(SourceAmerican))
	ge := len(BaseNames(SourceGeneric))
	if in == 0 || am == 0 || ge == 0 {
		t.Error("some source is empty")
	}
	if in+am+ge < len(names) {
		t.Error("union larger than parts")
	}
}

func TestBuildLexiconStructure(t *testing.T) {
	lex := buildLex(t)
	if lex.Groups < 600 {
		t.Errorf("only %d groups", lex.Groups)
	}
	if len(lex.GroupSizes) != lex.Groups {
		t.Errorf("GroupSizes len %d != Groups %d", len(lex.GroupSizes), lex.Groups)
	}
	// Every group has >= 3 members (en + hi + ta, possibly more via
	// homophone merging), and sizes sum to the entry count.
	total := 0
	for tag, n := range lex.GroupSizes {
		if n < 3 {
			t.Errorf("group %d has %d members", tag, n)
		}
		total += n
	}
	if total != len(lex.Entries) {
		t.Errorf("group sizes sum %d != %d entries", total, len(lex.Entries))
	}
	// Languages are as expected and scripts match.
	for _, e := range lex.Entries {
		switch e.Text.Lang {
		case script.English:
			if script.DetectScript(e.Text.Value) != script.Latin {
				t.Errorf("non-Latin English entry %q", e.Text.Value)
			}
		case script.Hindi:
			if script.DetectScript(e.Text.Value) != script.Devanagari {
				t.Errorf("non-Devanagari Hindi entry %q", e.Text.Value)
			}
		case script.Tamil:
			if script.DetectScript(e.Text.Value) != script.TamilScript {
				t.Errorf("non-Tamil entry %q", e.Text.Value)
			}
		default:
			t.Errorf("unexpected language %v", e.Text.Lang)
		}
		if e.Tag < 0 || e.Tag >= lex.Groups {
			t.Errorf("entry tag %d out of range", e.Tag)
		}
	}
}

func TestBuildLexiconMergesHomophones(t *testing.T) {
	lex := buildLex(t)
	// Kathy and Cathy phonemize identically -> same tag.
	tags := map[string]int{}
	for _, e := range lex.Entries {
		if e.Text.Lang == script.English {
			tags[e.Text.Value] = e.Tag
		}
	}
	ka, okA := tags["Kathy"]
	ca, okB := tags["Cathy"]
	if !okA || !okB {
		t.Fatal("Kathy/Cathy missing from lexicon")
	}
	if ka != ca {
		t.Error("homophones Kathy/Cathy have different tags")
	}
	// Distinct-sounding names have distinct tags.
	if tags["Nehru"] == tags["Gandhi"] {
		t.Error("Nehru and Gandhi share a tag")
	}
}

func TestBuildLexiconFiltersShortNames(t *testing.T) {
	lex := buildLex(t)
	for _, e := range lex.Entries {
		if e.Text.Lang == script.English && len([]rune(e.Text.Value)) < minNameRunes {
			t.Errorf("short name %q survived the filter", e.Text.Value)
		}
	}
}

func TestIdealMatches(t *testing.T) {
	l := &Lexicon{Groups: 2, GroupSizes: []int{3, 4}}
	if got := l.IdealMatches(); got != 3+6 {
		t.Errorf("IdealMatches = %d, want 9", got)
	}
}

func TestTexts(t *testing.T) {
	lex := buildLex(t)
	texts := lex.Texts()
	if len(texts) != len(lex.Entries) {
		t.Fatalf("Texts len %d", len(texts))
	}
	if texts[0] != lex.Entries[0].Text {
		t.Error("Texts order broken")
	}
}

func TestGenerateSizeAndShape(t *testing.T) {
	lex := buildLex(t)
	gen := Generate(lex, 50_000)
	if len(gen) != 50_000 {
		t.Fatalf("generated %d entries", len(gen))
	}
	// Concatenations stay within one language and are roughly twice as
	// long as lexicon strings.
	op := core.MustNew(core.Options{})
	lh, _, err := Distributions(gen[:2000], op)
	if err != nil {
		t.Fatal(err)
	}
	lexLh, _, err := Distributions(lex.Entries, op)
	if err != nil {
		t.Fatal(err)
	}
	if lh.Mean() < 1.7*lexLh.Mean() {
		t.Errorf("generated mean %.2f not ~2x lexicon mean %.2f", lh.Mean(), lexLh.Mean())
	}
	for _, e := range gen[:200] {
		detected := script.DetectScript(e.Text.Value)
		if e.Text.Lang == script.English && detected != script.Latin {
			t.Errorf("cross-script concatenation %q", e.Text.Value)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	lex := buildLex(t)
	a := Generate(lex, 1000)
	b := Generate(lex, 1000)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("generation not deterministic at %d", i)
		}
	}
}

func TestGenerateExhaustion(t *testing.T) {
	// A tiny lexicon cannot fill a huge target; Generate must stop.
	small := &Lexicon{Groups: 2, GroupSizes: []int{3, 3}}
	small.Entries = []Entry{
		{Text: core.Text{Value: "Abcd", Lang: script.English}, Tag: 0},
		{Text: core.Text{Value: "Efgh", Lang: script.English}, Tag: 1},
	}
	gen := Generate(small, 1000)
	if len(gen) != 2 { // 2 strings -> 2 ordered pairs at step 1
		t.Errorf("exhaustion produced %d entries", len(gen))
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram()
	for _, n := range []int{3, 5, 5, 7} {
		h.Add(n)
	}
	if h.Mean() != 5 {
		t.Errorf("mean = %v", h.Mean())
	}
	if got := h.Lengths(); len(got) != 3 || got[0] != 3 || got[2] != 7 {
		t.Errorf("lengths = %v", got)
	}
	if h.Counts[5] != 2 {
		t.Errorf("count[5] = %d", h.Counts[5])
	}
	if NewHistogram().Mean() != 0 {
		t.Error("empty histogram mean != 0")
	}
}

func TestDistributionsMatchPaperShape(t *testing.T) {
	// Figure 10's qualitative claims: lexicographic and phonemic
	// averages are close to each other; Figure 13: generated means are
	// about double.
	lex := buildLex(t)
	op := core.MustNew(core.Options{})
	lh, ph, err := Distributions(lex.Entries, op)
	if err != nil {
		t.Fatal(err)
	}
	if lh.Total != len(lex.Entries) || ph.Total != len(lex.Entries) {
		t.Errorf("histogram totals %d/%d", lh.Total, ph.Total)
	}
	if lh.Mean() < 5 || lh.Mean() > 9 {
		t.Errorf("lexicographic mean %.2f implausible (paper: 7.35)", lh.Mean())
	}
	if ph.Mean() < 4.5 || ph.Mean() > 9 {
		t.Errorf("phonemic mean %.2f implausible (paper: 7.16)", ph.Mean())
	}
	diff := lh.Mean() - ph.Mean()
	if diff < 0 || diff > 1.5 {
		t.Errorf("phonemic mean should be slightly below lexicographic: %.2f vs %.2f", ph.Mean(), lh.Mean())
	}
}

// The pipeline invariant the lexicon relies on: for every base name,
// the English phonemization and the round trip through each Indic
// orthography stay within the paper's operating threshold of each
// other at the default cost model. A handful of hard names may exceed
// it (the paper's own recall is not 100% either), so the test bounds
// the failure rate rather than requiring perfection.
func TestRoundTripDistanceBounded(t *testing.T) {
	lex := buildLex(t)
	op := core.MustNew(core.Options{})
	byTag := map[int][]Entry{}
	for _, e := range lex.Entries {
		byTag[e.Tag] = append(byTag[e.Tag], e)
	}
	total, bad := 0, 0
	for _, group := range byTag {
		for i := 0; i < len(group); i++ {
			for j := i + 1; j < len(group); j++ {
				pi, err := op.Transform(group[i].Text.Value, group[i].Text.Lang)
				if err != nil {
					t.Fatal(err)
				}
				pj, err := op.Transform(group[j].Text.Value, group[j].Text.Lang)
				if err != nil {
					t.Fatal(err)
				}
				total++
				if !op.MatchPhonemes(pi, pj, 0.30) {
					bad++
				}
			}
		}
	}
	if rate := float64(bad) / float64(total); rate > 0.10 {
		t.Errorf("%.1f%% of same-tag pairs exceed threshold 0.30 (%d of %d)", 100*rate, bad, total)
	}
}
