// Package dataset reconstructs the paper's two evaluation datasets: the
// tagged multiscript lexicon of §4.1 (roughly 800 base names, each in
// English, Hindi and Tamil, tagged so that phonetically-equivalent
// strings share a tag number) and the large synthetic set of §5
// (intra-language concatenations, about 200,000 names).
package dataset

import (
	"fmt"
	"sort"

	"lexequal/internal/core"
	"lexequal/internal/script"
	"lexequal/internal/ttp"
)

// Entry is one lexicon string with its ground-truth tag: two entries
// match correctly iff their tags are equal.
type Entry struct {
	Text core.Text
	Tag  int
}

// Lexicon is the tagged multiscript evaluation set.
type Lexicon struct {
	Entries []Entry
	// Groups is the number of distinct tags (n in the paper's recall
	// formula); group i has GroupSizes[i] members (the paper's n_i).
	Groups     int
	GroupSizes []int
}

// Source identifies which base-name lists to include.
type Source uint8

// Name sources (§4.1).
const (
	SourceIndian Source = 1 << iota
	SourceAmerican
	SourceGeneric
	SourceAll = SourceIndian | SourceAmerican | SourceGeneric
)

// BaseNames returns the deduplicated English base names of the selected
// sources, in deterministic order.
func BaseNames(src Source) []string {
	var all []string
	if src&SourceIndian != 0 {
		all = append(all, IndianNames...)
	}
	if src&SourceAmerican != 0 {
		all = append(all, AmericanNames...)
	}
	if src&SourceGeneric != 0 {
		all = append(all, GenericNames...)
	}
	seen := map[string]bool{}
	out := all[:0]
	for _, n := range all {
		if !seen[n] {
			seen[n] = true
			out = append(out, n)
		}
	}
	return out
}

// minNameRunes drops initials and very short names: with two- and
// three-letter strings a single phoneme of drift exceeds any reasonable
// threshold fraction, which no evaluation lexicon would tolerate (the
// paper's lexicon averages 7.35 characters).
const minNameRunes = 5

// BuildLexicon constructs the tagged multiscript lexicon: every base
// name is phonemized with the English converter and rendered into
// Devanagari and Tamil orthography (modelling the paper's hand
// transliteration, §4.1), producing three same-tag entries per name.
// The Indic renderings then flow through their own TTP converters at
// match time, reproducing the phoneme-set mismatches the paper studies.
//
// Base names with identical phonemizations (Kathy/Cathy,
// Gita/Geeta) are assigned a common tag: the ground truth is aural
// equivalence, exactly how the paper's manual tagging worked.
func BuildLexicon(reg *ttp.Registry, src Source) (*Lexicon, error) {
	if reg == nil {
		reg = ttp.Default()
	}
	en, ok := reg.Get(script.English)
	if !ok {
		return nil, fmt.Errorf("dataset: no English TTP converter")
	}
	names := BaseNames(src)
	lex := &Lexicon{}
	tagBySound := map[string]int{}
	for _, name := range names {
		if len([]rune(name)) < minNameRunes {
			continue
		}
		phon, err := en.Convert(name)
		if err != nil {
			return nil, fmt.Errorf("dataset: phonemize %q: %w", name, err)
		}
		if len(phon) < 3 {
			continue
		}
		hindi := script.ToDevanagari(phon)
		tamil := script.ToTamil(phon)
		if hindi == "" || tamil == "" {
			return nil, fmt.Errorf("dataset: empty transliteration for %q", name)
		}
		key := phon.IPA()
		tag, seen := tagBySound[key]
		if !seen {
			tag = lex.Groups
			tagBySound[key] = tag
			lex.GroupSizes = append(lex.GroupSizes, 0)
			lex.Groups++
		}
		entries := []Entry{{Text: core.Text{Value: name, Lang: script.English}, Tag: tag}}
		if !seen {
			// The Indic renderings are functions of the phonemization;
			// repeating them for homophonous spellings would add exact
			// duplicate strings.
			entries = append(entries,
				Entry{Text: core.Text{Value: hindi, Lang: script.Hindi}, Tag: tag},
				Entry{Text: core.Text{Value: tamil, Lang: script.Tamil}, Tag: tag},
			)
		}
		lex.Entries = append(lex.Entries, entries...)
		lex.GroupSizes[tag] += len(entries)
	}
	return lex, nil
}

// Texts projects the lexicon onto its language-tagged strings.
func (l *Lexicon) Texts() []core.Text {
	out := make([]core.Text, len(l.Entries))
	for i, e := range l.Entries {
		out[i] = e.Text
	}
	return out
}

// IdealMatches is the denominator of the paper's recall formula:
// Σ C(n_i, 2) over all tag groups.
func (l *Lexicon) IdealMatches() int {
	total := 0
	for _, n := range l.GroupSizes {
		total += n * (n - 1) / 2
	}
	return total
}

// Generate builds the §5 synthetic performance dataset: each lexicon
// string concatenated with other strings of the same language, up to
// target entries (the paper's set "contained about 200,000 names" with
// average lexicographic length 14.71 ≈ 2× the lexicon average). Pairs
// are enumerated deterministically and interleaved across languages.
// The generated entry keeps a tag composed from the two source tags so
// that ground truth remains available for false-dismissal audits.
func Generate(l *Lexicon, target int) []Entry {
	byLang := map[script.Language][]Entry{}
	var langs []script.Language
	for _, e := range l.Entries {
		if _, ok := byLang[e.Text.Lang]; !ok {
			langs = append(langs, e.Text.Lang)
		}
		byLang[e.Text.Lang] = append(byLang[e.Text.Lang], e)
	}
	sort.Slice(langs, func(i, j int) bool { return langs[i] < langs[j] })
	out := make([]Entry, 0, target)
	// Enumerate (i, i+step) pairs in rounds so that every string
	// contributes before any contributes twice.
	for step := 1; len(out) < target; step++ {
		progressed := false
		for _, lang := range langs {
			entries := byLang[lang]
			n := len(entries)
			if step >= n {
				continue
			}
			progressed = true
			for i := 0; i < n && len(out) < target; i++ {
				j := (i + step) % n
				a, b := entries[i], entries[j]
				out = append(out, Entry{
					Text: core.Text{Value: a.Text.Value + b.Text.Value, Lang: lang},
					Tag:  a.Tag*len(l.GroupSizes) + b.Tag,
				})
			}
			if len(out) >= target {
				break
			}
		}
		if !progressed {
			break // exhausted all pairs
		}
	}
	return out
}

// DefaultGeneratedSize matches the paper's "about 200,000 names".
const DefaultGeneratedSize = 200_000

// Histogram is a frequency distribution over string lengths, used to
// regenerate Figures 10 and 13.
type Histogram struct {
	Counts map[int]int
	Total  int
	Sum    int
}

// NewHistogram builds an empty histogram.
func NewHistogram() *Histogram { return &Histogram{Counts: map[int]int{}} }

// Add records one length observation.
func (h *Histogram) Add(n int) {
	h.Counts[n]++
	h.Total++
	h.Sum += n
}

// Mean returns the average length.
func (h *Histogram) Mean() float64 {
	if h.Total == 0 {
		return 0
	}
	return float64(h.Sum) / float64(h.Total)
}

// Lengths returns the observed lengths in ascending order.
func (h *Histogram) Lengths() []int {
	out := make([]int, 0, len(h.Counts))
	for n := range h.Counts {
		out = append(out, n)
	}
	sort.Ints(out)
	return out
}

// Distributions computes the lexicographic (Unicode character count)
// and phonemic length histograms of a set of entries — the two series
// of Figures 10 and 13. Entries whose language has no converter are
// skipped from the phonemic histogram.
func Distributions(entries []Entry, op *core.Operator) (lex, phon *Histogram, err error) {
	lex, phon = NewHistogram(), NewHistogram()
	for _, e := range entries {
		lex.Add(len([]rune(e.Text.Value)))
		if !op.Registry().Has(e.Text.Lang) {
			continue
		}
		p, err := op.Transform(e.Text.Value, e.Text.Lang)
		if err != nil {
			return nil, nil, fmt.Errorf("dataset: transform %s: %w", e.Text, err)
		}
		phon.Add(len(p))
	}
	return lex, phon, nil
}
