package lexequal

import (
	"fmt"

	"lexequal/internal/db"
	"lexequal/internal/sql"
)

// DB is an embedded multiscript database: tables live in heap files
// under a directory, secondary B-trees index integer columns, and a SQL
// subset with the paper's LexEQUAL extensions runs on top.
//
//	db, _ := lexequal.Open("catalog")
//	db.Exec(`CREATE TABLE Books (Author NVARCHAR, Title NVARCHAR)`)
//	db.Exec(`INSERT INTO Books VALUES ('नेहरु' LANG hindi, 'भारत एक खोज')`)
//	res, _ := db.Exec(`SELECT Author, Title FROM Books
//	    WHERE Author LEXEQUAL 'Nehru' THRESHOLD 0.30
//	    INLANGUAGES { English, Hindi, Tamil }`)
//
// Session settings select the physical strategy:
//
//	SET lexequal_strategy = naive | qgram | indexed
type DB struct {
	d    *db.DB
	sess *sql.Session
}

// QueryResult is the outcome of one SQL statement.
type QueryResult = sql.Result

// Row is one result tuple.
type Row = db.Row

// Value is one typed datum in a result row.
type Value = db.Value

// Open opens (creating if needed) a database directory with a default
// matcher.
func Open(dir string) (*DB, error) {
	return OpenWith(dir, NewDefault())
}

// OpenWith opens a database bound to a specific matcher configuration.
func OpenWith(dir string, m *Matcher) (*DB, error) {
	d, err := db.Open(dir)
	if err != nil {
		return nil, err
	}
	return wrap(d, m)
}

// OpenReplica opens a WAL-shipping read replica's directory (one
// written by `lexequald -follow`): reads work at the replica's applied
// horizon, every write is refused. Deleting the directory's replstate
// file promotes it to an ordinary database.
func OpenReplica(dir string) (*DB, error) {
	d, err := db.OpenOpts(dir, db.Options{Replica: true})
	if err != nil {
		return nil, err
	}
	return wrap(d, NewDefault())
}

// IsReplicaDir reports whether dir is marked as a read replica (it
// carries a replstate file); such a directory must be opened with
// OpenReplica.
func IsReplicaDir(dir string) bool { return db.IsReplicaDir(dir) }

func wrap(d *db.DB, m *Matcher) (*DB, error) {
	sess, err := sql.NewSession(d, m.operator())
	if err != nil {
		d.Close()
		return nil, err
	}
	return &DB{d: d, sess: sess}, nil
}

// Exec parses and runs one SQL statement.
func (x *DB) Exec(sqlText string) (*QueryResult, error) {
	return x.sess.Exec(sqlText)
}

// Close flushes and closes every table and index.
func (x *DB) Close() error { return x.d.Close() }

// Tables lists table names.
func (x *DB) Tables() []string { return x.d.Tables() }

// CheckIssue is one problem found by Check.
type CheckIssue = db.CheckIssue

// ErrCorrupt is the sentinel every detected-corruption error matches
// with errors.Is: page checksum mismatches, impossible page structure,
// damaged catalogs.
var ErrCorrupt = db.ErrCorrupt

// Check verifies the integrity of the whole database — page checksums,
// heap and B-tree structure, row codecs against schemas, and index ↔
// heap agreement. An empty result means the database is consistent.
func (x *DB) Check() []CheckIssue { return x.d.Check() }

// CheckWAL verifies the write-ahead log: segment and record checksums,
// LSN monotonicity, transaction well-formedness, and that no on-disk
// page was flushed ahead of its log record.
func (x *DB) CheckWAL() []CheckIssue { return x.d.CheckWAL() }

// WALStats reports write-ahead log activity (commits, fsyncs, LSN
// high-water marks).
type WALStats = db.WALStats

// WALStats returns a snapshot of write-ahead log activity.
func (x *DB) WALStats() WALStats { return x.d.WALStats() }

// NameTableSpec configures LoadNames.
type NameTableSpec = db.NameTableSpec

// LoadNames creates and loads the conventional multiscript name layout
// for texts — the base table with precomputed phonemic strings and
// grouped phoneme identifiers, the positional q-gram auxiliary table,
// and the id/group B-tree indexes — enabling the q-gram and indexed
// strategies for SQL queries over the table.
func (x *DB) LoadNames(table string, texts []Text, spec NameTableSpec) error {
	_, err := db.CreateNameTable(x.d, table, x.sess.Op, texts, spec)
	return err
}

// Format renders a query result as an aligned text table (a small
// convenience for examples and CLIs).
func Format(res *QueryResult) string {
	if res == nil {
		return ""
	}
	if len(res.Rows) == 0 && res.Message != "" {
		return res.Message + "\n"
	}
	widths := make([]int, len(res.Cols))
	for i, c := range res.Cols {
		widths[i] = len([]rune(c))
	}
	cells := make([][]string, len(res.Rows))
	for r, row := range res.Rows {
		cells[r] = make([]string, len(row))
		for i, v := range row {
			s := v.String()
			cells[r][i] = s
			if i < len(widths) && len([]rune(s)) > widths[i] {
				widths[i] = len([]rune(s))
			}
		}
	}
	var out []byte
	pad := func(s string, w int) {
		out = append(out, s...)
		for n := len([]rune(s)); n < w+2; n++ {
			out = append(out, ' ')
		}
	}
	for i, c := range res.Cols {
		pad(c, widths[i])
	}
	out = append(out, '\n')
	for i := range res.Cols {
		for n := 0; n < widths[i]; n++ {
			out = append(out, '-')
		}
		out = append(out, ' ', ' ')
		_ = i
	}
	out = append(out, '\n')
	for _, row := range cells {
		for i, s := range row {
			w := 0
			if i < len(widths) {
				w = widths[i]
			}
			pad(s, w)
		}
		out = append(out, '\n')
	}
	return string(out)
}

// MustExec is Exec that panics on error (for examples).
func (x *DB) MustExec(sqlText string) *QueryResult {
	res, err := x.Exec(sqlText)
	if err != nil {
		panic(fmt.Errorf("lexequal: %s: %w", sqlText, err))
	}
	return res
}
