// Package lexequal is a from-scratch reproduction of the LexEQUAL
// multiscript matching operator of Kumaran & Haritsa (EDBT 2004):
// matching proper names across writing systems by comparing their
// phonemic (IPA) transcriptions with a cluster-parameterized approximate
// string distance.
//
// The package exposes two levels of API:
//
//   - Matcher: the operator itself. Transform language-tagged strings to
//     phonemes, match pairs under a threshold, build in-memory corpora
//     with q-gram and phonetic-index acceleration, and run selections
//     and joins.
//
//   - DB: an embedded relational database (heap files + B-trees under a
//     SQL subset) with LexEQUAL integrated both as a UDF and as three
//     physical query plans — the configuration the paper's efficiency
//     experiments measure.
//
// The matching pipeline, briefly: a Text ("Nehru" tagged english, or
// "நேரு" tagged tamil) is transcribed by a rule-based text-to-phoneme
// converter; two transcriptions match at threshold e when their
// clustered edit distance is at most e times the shorter length.
// Substitutions between phonemes in the same articulatory cluster cost
// ICSC (default 0.25) instead of 1, so the cross-script sound drift the
// scripts force (Tamil's voicing neutralization, Devanagari's schwa
// deletion) stays cheap while real name differences stay expensive.
package lexequal

import (
	"lexequal/internal/core"
	"lexequal/internal/phoneme"
	"lexequal/internal/script"
	"lexequal/internal/soundex"
	"lexequal/internal/ttp"
)

// Language identifies the language a string is written in.
type Language = script.Language

// Languages with built-in text-to-phoneme converters, plus two
// (Arabic, Japanese) that appear in catalogs but have no converter and
// therefore yield NoResource.
const (
	English  = script.English
	Hindi    = script.Hindi
	Tamil    = script.Tamil
	Greek    = script.Greek
	Spanish  = script.Spanish
	French   = script.French
	Arabic   = script.Arabic
	Japanese = script.Japanese
)

// Text is a language-tagged string: the unit of multiscript data.
type Text = core.Text

// T builds a Text.
func T(value string, lang Language) Text { return Text{Value: value, Lang: lang} }

// GuessLanguage infers a default language from the dominant Unicode
// script of text (Latin defaults to English). Use explicit tags when
// you have them; this mirrors the paper's observation (§2.1) that
// script blocks identify languages only approximately.
func GuessLanguage(text string) Language { return script.GuessLanguage(text) }

// Result is the three-valued LexEQUAL outcome.
type Result = core.Result

// LexEQUAL outcomes.
const (
	False      = core.False
	True       = core.True
	NoResource = core.NoResource
)

// Strategy selects the execution plan for corpus and database queries.
type Strategy = core.Strategy

// Execution strategies (§5 of the paper): Naive calls the matcher on
// every row; QGram filters candidates with positional q-grams first;
// Indexed probes the phonetic (grouped phoneme identifier) index and
// may miss matches whose edits cross cluster boundaries.
const (
	Naive   = core.Naive
	QGram   = core.QGram
	Indexed = core.Indexed
)

// LangSet restricts matching to target languages (INLANGUAGES); nil
// means all languages.
type LangSet = core.LangSet

// NewLangSet builds a language filter; no arguments yields the
// wildcard.
func NewLangSet(langs ...Language) LangSet { return core.NewLangSet(langs...) }

// Stats reports how much work a query strategy performed.
type Stats = core.Stats

// Pair is one join result (row indexes into the joined corpora).
type Pair = core.Pair

// Corpus is a queryable in-memory collection with prebuilt q-gram and
// phonetic indexes.
type Corpus = core.Corpus

// Explanation is the evidence trail of one match decision.
type Explanation = core.Explanation

// Config tunes a Matcher. The zero value selects the paper's
// recommended operating point.
type Config struct {
	// ICSC is the intra-cluster substitution cost in [0,1]; 0 makes
	// same-cluster phonemes interchangeable (phonetic Soundex), 1
	// disables clustering (plain Levenshtein). Default 0.25.
	ICSC *float64
	// Threshold is the default match threshold in [0,1] used when a
	// call passes a negative threshold. Default 0.30.
	Threshold float64
	// Clusters names the phoneme partition: "default", "coarse" or
	// "fine".
	Clusters string
	// WeakIndel discounts insertion/deletion of glottals and schwa in
	// [0,1]; 0 disables the discount. Default 0.5.
	WeakIndel *float64
}

// Matcher is a configured LexEQUAL operator. It is safe for concurrent
// use.
type Matcher struct {
	op *core.Operator
}

// New builds a Matcher.
func New(cfg Config) (*Matcher, error) {
	opts := core.Options{DefaultThreshold: cfg.Threshold}
	if cfg.ICSC != nil {
		opts.ICSC = *cfg.ICSC
		opts.ICSCSet = true
	}
	if cfg.WeakIndel != nil {
		opts.WeakIndel = *cfg.WeakIndel
		opts.WeakIndelSet = true
	}
	if cfg.Clusters != "" {
		cl, err := phoneme.ByName(cfg.Clusters)
		if err != nil {
			return nil, err
		}
		opts.Clusters = cl
	}
	op, err := core.New(opts)
	if err != nil {
		return nil, err
	}
	return &Matcher{op: op}, nil
}

// NewDefault builds a Matcher at the paper's recommended operating
// point (ICSC 0.25, threshold 0.30, default clusters).
func NewDefault() *Matcher {
	m, err := New(Config{})
	if err != nil {
		panic(err) // the zero config is always valid
	}
	return m
}

// Match reports whether a and b name the same sound at the matcher's
// default threshold.
func (m *Matcher) Match(a, b Text) (Result, error) {
	return m.op.Match(a, b, -1)
}

// MatchThreshold is Match with an explicit threshold in [0,1].
func (m *Matcher) MatchThreshold(a, b Text, threshold float64) (Result, error) {
	return m.op.Match(a, b, threshold)
}

// Explain runs a match and returns the full evidence: both phoneme
// strings, the distance, the bound and an optimal alignment.
func (m *Matcher) Explain(a, b Text, threshold float64) (Explanation, error) {
	return m.op.Explain(a, b, threshold)
}

// Phonemes returns the IPA transcription of text.
func (m *Matcher) Phonemes(text string, lang Language) (string, error) {
	p, err := m.op.Transform(text, lang)
	if err != nil {
		return "", err
	}
	return p.IPA(), nil
}

// Languages lists the languages this matcher can transcribe.
func (m *Matcher) Languages() []Language {
	return m.op.Registry().Languages()
}

// Threshold returns the default match threshold.
func (m *Matcher) Threshold() float64 { return m.op.Threshold() }

// NewCorpus transforms texts once and builds the q-gram and phonetic
// indexes for repeated querying.
func (m *Matcher) NewCorpus(texts []Text) (*Corpus, error) {
	return m.op.NewCorpus(texts)
}

// ExecOption tunes how a corpus query executes without changing its
// result (see Parallel).
type ExecOption = core.ExecOption

// Parallel runs a query's candidate loop on a morsel-driven worker pool
// of the given width. workers <= 0 selects GOMAXPROCS; 1 (the default)
// is the serial path. Results and Stats are identical at any width.
func Parallel(workers int) ExecOption { return core.Parallel(workers) }

// Select finds the corpus rows matching query at the threshold (negative
// = matcher default), restricted to langs (nil = all), under the
// strategy.
func (m *Matcher) Select(c *Corpus, query Text, threshold float64, langs LangSet, strat Strategy, opts ...ExecOption) ([]int, Stats, error) {
	return c.Select(query, threshold, langs, strat, opts...)
}

// Join finds all cross-corpus matching pairs; requireDifferentLang
// restricts to pairs in different languages (the paper's equi-join
// example).
func Join(left, right *Corpus, threshold float64, requireDifferentLang bool, strat Strategy, opts ...ExecOption) ([]Pair, Stats, error) {
	return core.Join(left, right, threshold, requireDifferentLang, strat, opts...)
}

// SelfJoin joins a corpus with itself, returning each unordered pair
// once.
func SelfJoin(c *Corpus, threshold float64, requireDifferentLang bool, strat Strategy, opts ...ExecOption) ([]Pair, Stats, error) {
	return core.SelfJoin(c, threshold, requireDifferentLang, strat, opts...)
}

// MetricIndex is a BK-tree over a corpus's phoneme strings: the metric
// index the paper names as future work. Unlike the Indexed strategy it
// has no false dismissals; unlike Naive it prunes with the triangle
// inequality.
type MetricIndex = core.MetricIndex

// NewMetricIndex builds a metric index over a corpus.
func NewMetricIndex(c *Corpus) *MetricIndex { return c.NewMetricIndex() }

// SelectMetric searches a corpus through its metric index.
func SelectMetric(c *Corpus, mi *MetricIndex, query Text, threshold float64, langs LangSet) ([]int, Stats, error) {
	return c.SelectMetric(mi, query, threshold, langs)
}

// Soundex computes the classical 4-character Soundex code of a Latin
// name — the pseudo-phonetic matching database systems already ship,
// and the paper's point of departure.
func Soundex(name string) string { return soundex.Classic(name) }

// operator exposes the internal operator to the sibling facade files.
func (m *Matcher) operator() *core.Operator { return m.op }

// assert the default registry covers the six documented languages.
var _ = ttp.Default
