// E-Governance: the paper's §2 equi-join scenario (Figure 5). A civic
// registry holds citizen records entered in whichever script the clerk
// used; the LexEQUAL join finds people registered more than once under
// different scripts — de-duplication by sound, the application the
// paper cites from its RIDE-2003 companion work.
//
// The example runs the same join under all three execution strategies
// and prints the work statistics, making the §5 trade-off tangible.
//
//	go run ./examples/egovernance
package main

import (
	"fmt"
	"log"

	"lexequal"
)

func main() {
	m := lexequal.NewDefault()

	// A registry with duplicate people across scripts (and some noise).
	registry := []lexequal.Text{
		lexequal.T("Jawaharlal Nehru", lexequal.English),
		lexequal.T("जवाहरलाल नेहरु", lexequal.Hindi),
		lexequal.T("ஜவஹர்லால் நேரு", lexequal.Tamil),
		lexequal.T("Lakshmi Narayanan", lexequal.English),
		lexequal.T("लक्ष्मी नारायणन", lexequal.Hindi),
		lexequal.T("Kamala Krishnan", lexequal.English),
		lexequal.T("கமலா கிருஷ்ணன்", lexequal.Tamil),
		lexequal.T("Mohandas Gandhi", lexequal.English),
		lexequal.T("मोहनदास गांधी", lexequal.Hindi),
		lexequal.T("Ramesh Gupta", lexequal.English),
		lexequal.T("Suresh Gupta", lexequal.English), // different person!
		lexequal.T("सुरेश गुप्ता", lexequal.Hindi),
		lexequal.T("Katerina Sarri", lexequal.English),
		lexequal.T("Κατερινα Σαρρη", lexequal.Greek),
	}

	corpus, err := m.NewCorpus(registry)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Registry:")
	for i, t := range registry {
		ipa, _ := m.Phonemes(t.Value, t.Lang)
		fmt.Printf("  %2d. %-22s %-8s /%s/\n", i, t.Value, t.Lang, ipa)
	}

	// The Figure 5 join: same sound, different language.
	fmt.Println("\nCross-script duplicates (threshold 0.30), by strategy:")
	for _, strat := range []lexequal.Strategy{lexequal.Naive, lexequal.QGram, lexequal.Indexed} {
		pairs, stats, err := lexequal.SelfJoin(corpus, 0.30, true, strat)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\n  strategy %-8v: %d pairs (%d candidate comparisons for %d row pairs considered)\n",
			strat, len(pairs), stats.Candidates, stats.Rows)
		for _, p := range pairs {
			fmt.Printf("    %-22s == %s\n", corpus.Text(p.Left).Value, corpus.Text(p.Right).Value)
		}
	}

	// Ramesh vs Suresh: phonetically distinct, must NOT merge.
	fmt.Println("\nSanity: different people stay distinct:")
	res, err := m.Match(registry[9], registry[11])
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  %q vs %q -> %v\n", registry[9].Value, registry[11].Value, res)
	res, err = m.Match(registry[10], registry[11])
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  %q vs %q -> %v (the true cross-script duplicate)\n", registry[10].Value, registry[11].Value, res)
}
