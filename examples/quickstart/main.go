// Quickstart: match one name across four scripts with the LexEQUAL
// operator, inspect the phonemic evidence, and see the threshold at
// work.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"lexequal"
)

func main() {
	m := lexequal.NewDefault()

	// The same name in four writing systems.
	names := []lexequal.Text{
		lexequal.T("Nehru", lexequal.English),
		lexequal.T("नेहरु", lexequal.Hindi),
		lexequal.T("நேரு", lexequal.Tamil),
		lexequal.T("Νερου", lexequal.Greek),
	}

	fmt.Println("Phonemic transcriptions:")
	for _, n := range names {
		ipa, err := m.Phonemes(n.Value, n.Lang)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-8s %-8s /%s/\n", n.Value, n.Lang, ipa)
	}

	fmt.Println("\nAll pairs match at the default threshold (0.30):")
	for i, a := range names {
		for _, b := range names[i+1:] {
			res, err := m.Match(a, b)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  %-8s ~ %-8s -> %v\n", a.Value, b.Value, res)
		}
	}

	// Nero is the paper's example of a threshold-dependent near miss:
	// phonetically close to Nehru, but a different name.
	nero := lexequal.T("Nero", lexequal.English)
	nehru := names[0]
	fmt.Println("\nNero vs Nehru at different thresholds:")
	for _, thr := range []float64{0.05, 0.15, 0.30, 0.50} {
		res, err := m.MatchThreshold(nehru, nero, thr)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  threshold %.2f -> %v\n", thr, res)
	}

	// Explain shows the full evidence for a decision.
	ex, err := m.Explain(nehru, nero, 0.30)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nEvidence:")
	fmt.Println(" ", ex)

	// Languages without a text-to-phoneme converter yield NoResource,
	// never a silent false.
	res, err := m.Match(nehru, lexequal.T("بهنسي", lexequal.Arabic))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nArabic (no converter installed): %v\n", res)
}
