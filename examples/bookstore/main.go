// Bookstore: the paper's motivating Books.com scenario (Figures 1-4).
// A multilingual product catalog is loaded into the embedded database;
// the SQL:1999 way of finding an author across scripts (an OR of exact
// constants, Figure 2) is contrasted with the LexEQUAL query of
// Figure 3, whose result reproduces Figure 4.
//
//	go run ./examples/bookstore
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"lexequal"
)

func main() {
	dir := filepath.Join(os.TempDir(), "lexequal-bookstore")
	os.RemoveAll(dir)
	db, err := lexequal.Open(dir)
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()
	defer os.RemoveAll(dir)

	// The catalog of Figure 1 (the rows whose languages have built-in
	// converters; Arabic and Japanese rows stay NORESOURCE).
	db.MustExec(`CREATE TABLE Books (Author NVARCHAR, Title NVARCHAR, Price FLOAT, Language TEXT)`)
	db.MustExec(`INSERT INTO Books VALUES
		('Descartes' LANG french,  'Les Méditations Metaphysiques',  49.00, 'French'),
		('நேரு' LANG tamil,        'ஆசிய ஜோதி',                      250,   'Tamil'),
		('Σαρρη' LANG greek,       'Παιχνίδια στο Πιάνο',            15.50, 'Greek'),
		('Nero' LANG english,      'The Coronation of the Virgin',   99.00, 'English'),
		('بهنسي' LANG arabic,      'العمارة عبر التاريخ',            75,    'Arabic'),
		('Nehru' LANG english,     'Discovery of India',             9.95,  'English'),
		('नेहरु' LANG hindi,       'भारत एक खोज',                    175,   'Hindi')`)

	fmt.Println("— Figure 2: the SQL:1999 way (exact constants per script) —")
	res := db.MustExec(`select Author, Title from Books
		where Author = 'Nehru' or Author = 'नेहरु' or Author = 'நேரு'`)
	fmt.Print(lexequal.Format(res))
	fmt.Println("(the user had to type the name in every script, and still gets no fuzziness)")

	fmt.Println("\n— Figure 3: the LexEQUAL way —")
	res = db.MustExec(`select Author, Title, Price from Books
		where Author LexEQUAL 'Nehru' Threshold 0.30
		inlanguages { English, Hindi, Tamil, Greek }`)
	fmt.Print(lexequal.Format(res))
	fmt.Println("(one constant, one language; Figure 4's rows fall out — plus Nero,")
	fmt.Println(" which the paper itself concedes \"could appear based on threshold value setting\")")

	fmt.Println("\n— Same query at a strict threshold —")
	res = db.MustExec(`select Author, Title from Books
		where Author LexEQUAL 'Nehru' Threshold 0.05 inlanguages { * }`)
	fmt.Print(lexequal.Format(res))
	fmt.Println("(at 0.05 only the near-exact transcriptions survive)")

	fmt.Println("\n— Query constants can be in any script —")
	res = db.MustExec(`select Author, Title from Books where Author LexEQUAL 'நேரு' Threshold 0.30`)
	fmt.Print(lexequal.Format(res))

	fmt.Println("\n— Ordinary SQL still works —")
	res = db.MustExec(`select Language, count(*) as n, min(Price) from Books group by Language order by Language`)
	fmt.Print(lexequal.Format(res))
}
