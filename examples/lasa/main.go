// LASA: look-alike/sound-alike drug-name screening, the pharmaceutical
// application the paper cites (§2.3, Lambert et al.). Before approving
// a new drug name, regulators screen it against the existing formulary
// for names confusable by ear — a monoscript instance of phonetic
// matching where the threshold directly controls the screening
// strictness.
//
//	go run ./examples/lasa
package main

import (
	"fmt"
	"log"
	"sort"

	"lexequal"
)

func main() {
	m := lexequal.NewDefault()

	// A slice of a formulary, including famously-confused pairs
	// (Celebrex/Celexa/Cerebyx, Zantac/Xanax, Losec/Lasix).
	formulary := []string{
		"Celebrex", "Celexa", "Cerebyx", "Zantac", "Xanax", "Zyrtec",
		"Losec", "Lasix", "Luvox", "Lovenox", "Paxil", "Plavix",
		"Prilosec", "Prozac", "Klonopin", "Clonidine", "Ativan",
		"Atarax", "Amaryl", "Amikin", "Hydralazine", "Hydroxyzine",
	}
	texts := make([]lexequal.Text, len(formulary))
	for i, name := range formulary {
		texts[i] = lexequal.T(name, lexequal.English)
	}
	corpus, err := m.NewCorpus(texts)
	if err != nil {
		log.Fatal(err)
	}

	// Screen a proposed new name against the formulary at increasing
	// strictness.
	proposed := "Zelexa"
	fmt.Printf("Screening proposed name %q:\n", proposed)
	for _, thr := range []float64{0.15, 0.30, 0.45} {
		hits, _, err := m.Select(corpus, lexequal.T(proposed, lexequal.English), thr, nil, lexequal.QGram)
		if err != nil {
			log.Fatal(err)
		}
		names := make([]string, len(hits))
		for i, h := range hits {
			names[i] = corpus.Text(h).Value
		}
		fmt.Printf("  threshold %.2f: %d confusable: %v\n", thr, len(names), names)
	}

	// Full pairwise audit of the formulary itself: which existing pairs
	// are confusable? (The self-join of Figure 5 without the language
	// predicate.)
	pairs, _, err := lexequal.SelfJoin(corpus, 0.30, false, lexequal.QGram)
	if err != nil {
		log.Fatal(err)
	}
	type scored struct {
		a, b string
		d    float64
	}
	var audit []scored
	for _, p := range pairs {
		ex, err := m.Explain(corpus.Text(p.Left), corpus.Text(p.Right), 0.30)
		if err != nil {
			log.Fatal(err)
		}
		audit = append(audit, scored{corpus.Text(p.Left).Value, corpus.Text(p.Right).Value, ex.Distance})
	}
	sort.Slice(audit, func(i, j int) bool { return audit[i].d < audit[j].d })
	fmt.Printf("\nConfusable pairs already in the formulary (threshold 0.30): %d\n", len(audit))
	for _, s := range audit {
		ipaA, _ := m.Phonemes(s.a, lexequal.English)
		ipaB, _ := m.Phonemes(s.b, lexequal.English)
		fmt.Printf("  %-10s /%s/  ~  %-10s /%s/   distance %.2f\n", s.a, ipaA, s.b, ipaB, s.d)
	}
	fmt.Println("\n(every flagged pair warrants a label/packaging review — the paper's LASA use case)")
}
