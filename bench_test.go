package lexequal

// Benchmarks, one per table and figure of the paper (see DESIGN.md §4
// for the experiment index), plus the ablations of DESIGN.md §5. The
// full-scale reproduction lives in cmd/quality and cmd/perf; these
// benches exercise the identical code paths at bench-friendly sizes so
// `go test -bench=.` regenerates the SHAPE of every result in minutes:
//
//	Table 1:  exact scan ≪ naive-UDF scan; exact join ≪ naive-UDF join
//	Table 2:  q-gram scan/join between the two
//	Table 3:  phonetic-index scan/join fastest
//	Fig 10/13: dataset construction and length distributions
//	Fig 11/12: the recall/precision sweep machinery
import (
	"fmt"
	"os"
	"sync"
	"testing"

	"lexequal/internal/core"
	"lexequal/internal/dataset"
	"lexequal/internal/db"
	"lexequal/internal/editdist"
	"lexequal/internal/metrics"
	"lexequal/internal/phoneme"
	"lexequal/internal/ttp"
)

// benchRows keeps the database fixture bench-sized; cmd/perf runs the
// full 200k-row experiment.
const (
	benchRows     = 20000
	benchJoinRows = 400 // the paper's 0.2% of 200k
	benchThr      = 0.25
)

type benchFixture struct {
	op      *core.Operator
	lex     *dataset.Lexicon
	gen     []dataset.Entry
	d       *db.DB
	cfg     *db.LexConfig
	sub     *db.DB
	subCfg  *db.LexConfig
	queries []core.Text
	dir     string
}

var (
	fixOnce sync.Once
	fix     *benchFixture
	fixErr  error
)

func getFixture(b *testing.B) *benchFixture {
	b.Helper()
	fixOnce.Do(func() {
		fixErr = func() error {
			f := &benchFixture{}
			var err error
			f.op, err = core.New(core.Options{})
			if err != nil {
				return err
			}
			f.lex, err = dataset.BuildLexicon(ttp.Default(), dataset.SourceAll)
			if err != nil {
				return err
			}
			f.gen = dataset.Generate(f.lex, benchRows)
			f.dir, err = os.MkdirTemp("", "lexequal-bench-")
			if err != nil {
				return err
			}
			texts := make([]core.Text, len(f.gen))
			for i, e := range f.gen {
				texts[i] = e.Text
			}
			f.d, err = db.Open(f.dir + "/full")
			if err != nil {
				return err
			}
			f.cfg, err = db.CreateNameTable(f.d, "names", f.op, texts, db.NameTableSpec{WithAux: true, WithIndexes: true})
			if err != nil {
				return err
			}
			f.sub, err = db.Open(f.dir + "/sub")
			if err != nil {
				return err
			}
			f.subCfg, err = db.CreateNameTable(f.sub, "names", f.op, texts[:benchJoinRows], db.NameTableSpec{WithAux: true, WithIndexes: true})
			if err != nil {
				return err
			}
			for i := 0; i < len(texts); i += len(texts) / 16 {
				f.queries = append(f.queries, texts[i])
			}
			fix = f
			return nil
		}()
	})
	if fixErr != nil {
		b.Fatal(fixErr)
	}
	return fix
}

func (f *benchFixture) query(i int) core.Text { return f.queries[i%len(f.queries)] }

func collectScan(b *testing.B, mk func(q core.Text) db.Node, f *benchFixture) {
	b.Helper()
	total := 0
	for i := 0; i < b.N; i++ {
		rows, err := db.Collect(mk(f.query(i)))
		if err != nil {
			b.Fatal(err)
		}
		total += len(rows)
	}
	b.ReportMetric(float64(total)/float64(b.N), "matches/query")
}

// --- Figure 10: tagged lexicon construction and distributions ---

func BenchmarkFig10_LexiconBuild(b *testing.B) {
	for i := 0; i < b.N; i++ {
		lex, err := dataset.BuildLexicon(ttp.Default(), dataset.SourceAll)
		if err != nil {
			b.Fatal(err)
		}
		op, _ := core.New(core.Options{})
		lh, ph, err := dataset.Distributions(lex.Entries, op)
		if err != nil {
			b.Fatal(err)
		}
		if lh.Mean() < 4 || ph.Mean() < 4 {
			b.Fatal("implausible distributions")
		}
	}
}

// --- Figure 11: one recall/precision sweep (all-pairs per ICSC) ---

func BenchmarkFig11_QualitySweep(b *testing.B) {
	lex, err := dataset.BuildLexicon(ttp.Default(), dataset.SourceGeneric)
	if err != nil {
		b.Fatal(err)
	}
	ev, err := metrics.NewEvaluator(lex, nil)
	if err != nil {
		b.Fatal(err)
	}
	thresholds := []float64{0.1, 0.2, 0.3, 0.4, 0.5}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pts, err := ev.SweepClustered(phoneme.DefaultClusters(), 0.25, core.DefaultWeakIndel, thresholds)
		if err != nil {
			b.Fatal(err)
		}
		if pts[len(pts)-1].Recall == 0 {
			b.Fatal("sweep produced nothing")
		}
	}
}

// --- Figure 12: the full precision-recall grid and best point ---

func BenchmarkFig12_PRCurves(b *testing.B) {
	lex, err := dataset.BuildLexicon(ttp.Default(), dataset.SourceGeneric)
	if err != nil {
		b.Fatal(err)
	}
	ev, err := metrics.NewEvaluator(lex, nil)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		grid, err := ev.Grid(phoneme.DefaultClusters(), core.DefaultWeakIndel,
			[]float64{0, 0.5, 1}, []float64{0.2, 0.3, 0.4})
		if err != nil {
			b.Fatal(err)
		}
		best := metrics.Best(grid)
		if best.Recall == 0 && best.Precision == 0 {
			b.Fatal("empty grid")
		}
	}
}

// --- Figure 13: generating the synthetic performance dataset ---

func BenchmarkFig13_GeneratedSet(b *testing.B) {
	f := getFixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		gen := dataset.Generate(f.lex, benchRows)
		if len(gen) != benchRows {
			b.Fatalf("generated %d", len(gen))
		}
	}
}

// --- Table 1: native exact matching vs the naive LexEQUAL UDF ---

func BenchmarkTable1_ExactScan(b *testing.B) {
	f := getFixture(b)
	b.ResetTimer()
	collectScan(b, func(q core.Text) db.Node {
		return &db.Filter{
			Child: db.NewSeqScan(f.cfg.Table),
			Pred: &db.Binary{Op: "=",
				L: &db.ColRef{Idx: f.cfg.NameCol},
				R: &db.Const{V: db.NStr(q.Value, q.Lang)}},
		}
	}, f)
}

func BenchmarkTable1_UDFScan(b *testing.B) {
	f := getFixture(b)
	b.ResetTimer()
	collectScan(b, func(q core.Text) db.Node {
		return db.NewLexScanNaive(f.cfg, q, benchThr, nil)
	}, f)
}

func BenchmarkTable1_ExactJoin(b *testing.B) {
	f := getFixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, err := db.Collect(&db.HashJoin{
			Left:     db.NewSeqScan(f.subCfg.Table),
			Right:    db.NewSeqScan(f.subCfg.Table),
			LeftCol:  f.subCfg.NameCol,
			RightCol: f.subCfg.NameCol,
		})
		if err != nil || len(rows) == 0 {
			b.Fatalf("exact join: %d rows, %v", len(rows), err)
		}
	}
}

func BenchmarkTable1_UDFJoin(b *testing.B) {
	f := getFixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, err := db.Collect(db.NewLexJoin(f.subCfg, f.subCfg, benchThr, false, core.Naive))
		if err != nil || len(rows) == 0 {
			b.Fatalf("udf join: %d rows, %v", len(rows), err)
		}
	}
}

// --- Table 2: q-gram filtered scan and join ---

func BenchmarkTable2_QGramScan(b *testing.B) {
	f := getFixture(b)
	b.ResetTimer()
	collectScan(b, func(q core.Text) db.Node {
		return db.NewLexScanQGram(f.cfg, q, benchThr, nil)
	}, f)
}

func BenchmarkTable2_QGramJoin(b *testing.B) {
	f := getFixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, err := db.Collect(db.NewLexJoin(f.subCfg, f.subCfg, benchThr, false, core.QGram))
		if err != nil || len(rows) == 0 {
			b.Fatalf("qgram join: %d rows, %v", len(rows), err)
		}
	}
}

// --- Table 3: phonetic-index scan and join ---

func BenchmarkTable3_IndexedScan(b *testing.B) {
	f := getFixture(b)
	b.ResetTimer()
	collectScan(b, func(q core.Text) db.Node {
		return db.NewLexScanIndexed(f.cfg, q, benchThr, nil)
	}, f)
}

func BenchmarkTable3_IndexedJoin(b *testing.B) {
	f := getFixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, err := db.Collect(db.NewLexJoin(f.subCfg, f.subCfg, benchThr, false, core.Indexed))
		if err != nil || len(rows) == 0 {
			b.Fatalf("indexed join: %d rows, %v", len(rows), err)
		}
	}
}

// --- Ablations (DESIGN.md §5) ---

// Banded, threshold-bounded DP vs the full matrix of Figure 8.
func BenchmarkAblation_FullDP(b *testing.B) {
	cm, _ := editdist.NewClusteredWeak(phoneme.DefaultClusters(), 0.25, 0.5)
	a := phoneme.MustParse("dʒəʋaːɦərlaːlneːru")
	c := phoneme.MustParse("dʒawɑhɑrlɑlnɛru")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		editdist.Distance(a, c, cm)
	}
}

func BenchmarkAblation_BandedDP(b *testing.B) {
	cm, _ := editdist.NewClusteredWeak(phoneme.DefaultClusters(), 0.25, 0.5)
	a := phoneme.MustParse("dʒəʋaːɦərlaːlneːru")
	c := phoneme.MustParse("dʒawɑhɑrlɑlnɛru")
	bound := benchThr * float64(len(c))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		editdist.DistanceBounded(a, c, cm, bound)
	}
}

// Per-value phoneme caching (the paper's "derive on demand" vs
// store-once design, §3.1).
func BenchmarkAblation_PhonemeCacheOn(b *testing.B) {
	op, _ := core.New(core.Options{})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := op.Transform("Jawaharlal", "english"); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblation_PhonemeCacheOff(b *testing.B) {
	op, _ := core.New(core.Options{CacheSize: -1})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := op.Transform("Jawaharlal", "english"); err != nil {
			b.Fatal(err)
		}
	}
}

// Gram length: filter selectivity vs table size.
func BenchmarkAblation_QgramQ(b *testing.B) {
	f := getFixture(b)
	texts := make([]core.Text, 4000)
	for i := range texts {
		texts[i] = f.gen[i].Text
	}
	for _, q := range []int{2, 3, 4} {
		b.Run(fmt.Sprintf("q=%d", q), func(b *testing.B) {
			corpus, err := f.op.NewCorpusQ(texts, q)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := corpus.Select(f.query(i), benchThr, nil, core.QGram); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// Cluster granularity: candidate-set size of the phonetic index.
func BenchmarkAblation_Clusters(b *testing.B) {
	f := getFixture(b)
	texts := make([]core.Text, 4000)
	for i := range texts {
		texts[i] = f.gen[i].Text
	}
	for _, cl := range []*phoneme.Clusters{phoneme.CoarseClusters(), phoneme.DefaultClusters(), phoneme.FineClusters()} {
		b.Run(cl.Name(), func(b *testing.B) {
			op, err := core.New(core.Options{Clusters: cl})
			if err != nil {
				b.Fatal(err)
			}
			corpus, err := op.NewCorpus(texts)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			candidates := 0
			for i := 0; i < b.N; i++ {
				_, st, err := corpus.Select(f.query(i), benchThr, nil, core.Indexed)
				if err != nil {
					b.Fatal(err)
				}
				candidates += st.Candidates
			}
			b.ReportMetric(float64(candidates)/float64(b.N), "candidates/query")
		})
	}
}

// Join strategy: hash join vs nested loop for the exact equi-join.
func BenchmarkAblation_JoinStrategy(b *testing.B) {
	f := getFixture(b)
	b.Run("hash", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := db.Collect(&db.HashJoin{
				Left:     db.NewSeqScan(f.subCfg.Table),
				Right:    db.NewSeqScan(f.subCfg.Table),
				LeftCol:  f.subCfg.IDCol,
				RightCol: f.subCfg.IDCol,
			}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("nestedloop", func(b *testing.B) {
		pred := &db.Binary{Op: "=",
			L: &db.ColRef{Idx: f.subCfg.IDCol},
			R: &db.ColRef{Idx: len(f.subCfg.Table.Columns) + f.subCfg.IDCol}}
		for i := 0; i < b.N; i++ {
			if _, err := db.Collect(&db.NestedLoopJoin{
				Left:  db.NewSeqScan(f.subCfg.Table),
				Right: db.NewSeqScan(f.subCfg.Table),
				Pred:  pred,
			}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// Metric index (BK-tree, the paper's future-work item) vs the naive
// scan: same exact results, sublinear distance evaluations.
func BenchmarkAblation_MetricIndex(b *testing.B) {
	f := getFixture(b)
	texts := make([]core.Text, 4000)
	for i := range texts {
		texts[i] = f.gen[i].Text
	}
	corpus, err := f.op.NewCorpus(texts)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("build", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if mi := corpus.NewMetricIndex(); mi.Size() == 0 {
				b.Fatal("empty index")
			}
		}
	})
	mi := corpus.NewMetricIndex()
	b.Run("select", func(b *testing.B) {
		evals := 0
		for i := 0; i < b.N; i++ {
			_, st, err := corpus.SelectMetric(mi, f.query(i), 0.1, nil)
			if err != nil {
				b.Fatal(err)
			}
			evals += st.Candidates
		}
		b.ReportMetric(float64(evals)/float64(b.N), "distevals/query")
	})
	b.Run("naive", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := corpus.Select(f.query(i), 0.1, nil, core.Naive); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// End-to-end SQL overhead: the Figure 3 query through the parser and
// planner vs the direct physical plan.
func BenchmarkSQLSelectLexEqual(b *testing.B) {
	f := getFixture(b)
	d, err := OpenWith(b.TempDir(), NewDefault())
	if err != nil {
		b.Fatal(err)
	}
	defer d.Close()
	texts := make([]Text, 2000)
	for i := range texts {
		texts[i] = f.gen[i].Text
	}
	if err := d.LoadNames("names", texts, NameTableSpec{WithAux: true, WithIndexes: true}); err != nil {
		b.Fatal(err)
	}
	d.MustExec("SET lexequal_strategy = qgram")
	q := fmt.Sprintf("SELECT id FROM names WHERE name LEXEQUAL '%s' THRESHOLD 0.25", texts[0].Value)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := d.Exec(q); err != nil {
			b.Fatal(err)
		}
	}
}
